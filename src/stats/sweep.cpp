#include "stats/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>

#include "stats/calibration_persist.hpp"
#include "util/error.hpp"
#include "util/fnv.hpp"
#include "util/rng.hpp"

namespace duti {

namespace {

// Shared per-run tallies of COMPUTED work (cache hits excluded). Updated
// from probe lambdas that may run concurrently across points and
// speculative waves; relaxed ordering is fine — the counters are summed
// after the run joins, and they never feed a determinism-sensitive path.
struct RunCounters {
  std::atomic<std::uint64_t> probes{0};
  std::atomic<std::uint64_t> trials{0};

  void record(const ProbeResult& r) {
    probes.fetch_add(1, std::memory_order_relaxed);
    trials.fetch_add(r.trials, std::memory_order_relaxed);
  }
};

std::uint64_t point_seed(const SweepPoint& p, std::uint64_t value) {
  return p.seed_for ? p.seed_for(value) : derive_seed(p.search.seed, value);
}

// Full-budget probe for a declarative point, routed through the shared
// cache session. The key pins every input that shapes the result, so a
// hit is bit-identical to the fresh computation.
ProbeFn make_full_probe(const SweepPoint& p, ProbeCache& cache,
                        RunCounters& counters, ThreadPool& pool) {
  return [&p, &cache, &counters, &pool](std::uint64_t value) {
    const std::uint64_t seed = point_seed(p, value);
    ProbeKey key = p.cache_base;
    key.param = value;
    key.trials = p.search.trials;
    key.seed = seed;
    key.flavor = "full";
    return cache.get_or_compute(key, [&] {
      const ProbeResult r = probe_success(p.make_tester(value), p.uniform,
                                          p.far, p.search.trials, seed, pool);
      counters.record(r);
      return r;
    });
  };
}

// Adaptive (early-stopping) bracket flavor over the SAME per-value seed —
// the adaptive engine runs a prefix of the full probe's trial stream, so
// an exhausted bracket probe is bit-identical to the full one.
ProbeFn make_bracket_probe(const SweepPoint& p, const AdaptiveProbeConfig& ac,
                           ProbeCache& cache, RunCounters& counters,
                           ThreadPool& pool) {
  return [&p, ac, &cache, &counters, &pool](std::uint64_t value) {
    const std::uint64_t seed = point_seed(p, value);
    ProbeKey key = p.cache_base;
    key.param = value;
    key.trials = p.search.trials;
    key.seed = seed;
    key.flavor = adaptive_flavor(ac);
    return cache.get_or_compute(key, [&] {
      const ProbeResult r =
          probe_success_adaptive(p.make_tester(value), p.uniform, p.far,
                                 p.search.trials, seed, ac, pool);
      counters.record(r);
      return r;
    });
  };
}

ProbeFn wrap_counting(ProbeFn fn, RunCounters& counters) {
  return [fn = std::move(fn), &counters](std::uint64_t value) {
    const ProbeResult r = fn(value);
    counters.record(r);
    return r;
  };
}

CacheStats stats_delta(const CacheStats& before, const CacheStats& after) {
  CacheStats d;
  d.hits = after.hits - before.hits;
  d.misses = after.misses - before.misses;
  d.inserts = after.inserts - before.inserts;
  return d;
}

}  // namespace

std::uint64_t sweep_interpolate_hint(double axis0, std::uint64_t min0,
                                     double axis1, std::uint64_t min1,
                                     double axis, std::uint64_t lo,
                                     std::uint64_t hi) {
  if (min0 == 0 || min1 == 0 || lo > hi) return 0;
  const auto clamp_to_range = [&](double v) -> std::uint64_t {
    if (!(v >= 1.0)) return lo;  // also catches NaN
    if (v >= static_cast<double>(hi)) return hi;
    const auto u = static_cast<std::uint64_t>(std::llround(v));
    return std::min(hi, std::max(lo, u));
  };
  // Degenerate axis: no direction to extrapolate along — predict the level.
  if (axis0 == axis1) {
    return clamp_to_range(std::sqrt(static_cast<double>(min0) *
                                    static_cast<double>(min1)));
  }
  // The paper's q* curves are power laws in every sweep axis, so fit the
  // straight line in log-log space when the axis allows it; otherwise the
  // minima still vary geometrically, so keep the log on the value side.
  double x0 = axis0;
  double x1 = axis1;
  double x = axis;
  if (axis0 > 0.0 && axis1 > 0.0 && axis > 0.0) {
    x0 = std::log(axis0);
    x1 = std::log(axis1);
    x = std::log(axis);
  }
  const double y0 = std::log(static_cast<double>(min0));
  const double y1 = std::log(static_cast<double>(min1));
  const double t = (x - x0) / (x1 - x0);
  return clamp_to_range(std::exp(y0 + t * (y1 - y0)));
}

std::uint64_t sweep_fingerprint(const std::vector<SweepPointResult>& points) {
  Fnv64 h;
  h.u64(points.size());
  for (const SweepPointResult& p : points) {
    h.str(p.label);
    h.u64(std::bit_cast<std::uint64_t>(p.axis));
    h.u64(p.found ? 1 : 0);
    h.u64(p.minimum);
    h.u64(p.verdict ? 1 : 0);
    h.u64(p.hint);
    h.u64(p.audit.size());
    for (const auto& [value, r] : p.audit) {
      h.u64(value);
      h.u64(r.trials);
      h.u64(r.uniform_successes);
      h.u64(r.far_successes);
      h.u64(r.budget);
      h.u64(static_cast<std::uint64_t>(r.stop));
    }
  }
  return h.value();
}

SweepResult run_sweep(const std::vector<SweepPoint>& points,
                      const SweepEngineConfig& cfg, ThreadPool& pool) {
  for (const SweepPoint& p : points) {
    require(static_cast<bool>(p.probe) ||
                (static_cast<bool>(p.make_tester) &&
                 static_cast<bool>(p.uniform) && static_cast<bool>(p.far)),
            "run_sweep: point needs a raw probe or a full declarative spec");
    require(!p.bracket_probe || static_cast<bool>(p.probe),
            "run_sweep: bracket_probe without a raw probe");
  }

  ProbeCache& cache = cfg.cache != nullptr ? *cfg.cache : ProbeCache::global();
  // Referee calibrations persist through the same session cache as the
  // probe results for the duration of the sweep; a session cache (which
  // may not outlive the caller) is detached again on exit so the memo's
  // hooks never dangle.
  struct CalibHookGuard {
    ProbeCache* session;
    explicit CalibHookGuard(ProbeCache& c) : session(&c) {
      if (session->enabled()) install_calibration_persistence(*session);
    }
    ~CalibHookGuard() {
      if (session == &ProbeCache::global()) return;
      if (ProbeCache::global().enabled()) {
        install_calibration_persistence(ProbeCache::global());
      } else {
        uninstall_calibration_persistence();
      }
    }
  } calib_hooks(cache);
  const CacheStats before = cache.stats();
  RunCounters counters;

  SweepResult out;
  out.points.resize(points.size());

  auto run_point = [&](std::size_t i, std::uint64_t hint) {
    const SweepPoint& p = points[i];
    MinSearchConfig scfg = p.search;
    scfg.hint = cfg.warm_start ? hint : 0;

    ProbeFn full;
    ProbeFn bracket;
    if (p.probe) {
      full = wrap_counting(p.probe, counters);
      if (p.bracket_probe) bracket = wrap_counting(p.bracket_probe, counters);
    } else {
      full = make_full_probe(p, cache, counters, pool);
      if (cfg.warm_start) {
        AdaptiveProbeConfig ac = cfg.adaptive;
        ac.target = p.search.target;
        bracket = make_bracket_probe(p, ac, cache, counters, pool);
      }
    }
    scfg.adaptive_bracket = cfg.warm_start && static_cast<bool>(bracket);

    const MinSearchResult r =
        bracket ? find_min_param(full, bracket, scfg, pool)
                : find_min_param(full, scfg, pool);

    SweepPointResult& pr = out.points[i];
    pr.label = p.label;
    pr.axis = p.axis;
    pr.found = r.found;
    pr.minimum = r.found ? r.minimum : 0;
    pr.hint = scfg.hint;
    pr.audit = r.probes;
    pr.probes_consulted = pr.audit.size();
    for (const auto& [value, probe_result] : pr.audit) {
      (void)value;
      pr.trials_consulted += probe_result.trials;
    }
    pr.verdict = false;
    if (r.found) {
      for (auto it = pr.audit.rbegin(); it != pr.audit.rend(); ++it) {
        if (it->first == r.minimum) {
          pr.verdict = it->second.passes(p.search.target);
          break;
        }
      }
    }
  };

  auto run_wave = [&](const std::vector<std::size_t>& order,
                      const std::vector<std::uint64_t>& hints) {
    if (cfg.points_parallel && order.size() > 1 && pool.size() > 1) {
      pool.parallel_for(order.size(), 1,
                        [&](std::size_t begin, std::size_t end, unsigned) {
                          for (std::size_t i = begin; i < end; ++i) {
                            run_point(order[i], hints[i]);
                          }
                        });
    } else {
      for (std::size_t i = 0; i < order.size(); ++i) {
        run_point(order[i], hints[i]);
      }
    }
  };

  // Wave plan: with warm start and >= 3 points, the axis-extreme anchors
  // run first (cold), then every interior point runs with a hint
  // interpolated between the anchor minima. The anchors — not "whichever
  // neighbor finished first" — define the hints, so the schedule is a pure
  // function of the spec and the anchor results.
  std::vector<std::size_t> anchors;
  std::vector<std::size_t> interior;
  std::size_t imin = 0;
  std::size_t imax = 0;
  if (cfg.warm_start && points.size() >= 3) {
    for (std::size_t i = 1; i < points.size(); ++i) {
      if (points[i].axis < points[imin].axis) imin = i;
      if (points[i].axis > points[imax].axis) imax = i;
    }
  }
  if (imin != imax) {
    anchors = {imin, imax};
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i != imin && i != imax) interior.push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) anchors.push_back(i);
  }

  run_wave(anchors, std::vector<std::uint64_t>(anchors.size(), 0));
  if (!interior.empty()) {
    const SweepPointResult& a = out.points[imin];
    const SweepPointResult& b = out.points[imax];
    std::vector<std::uint64_t> hints(interior.size(), 0);
    if (a.found && b.found) {
      for (std::size_t i = 0; i < interior.size(); ++i) {
        const SweepPoint& p = points[interior[i]];
        hints[i] =
            sweep_interpolate_hint(a.axis, a.minimum, b.axis, b.minimum,
                                   p.axis, p.search.lo, p.search.hi);
      }
    }
    run_wave(interior, hints);
  }

  for (const SweepPointResult& pr : out.points) {
    out.probes_consulted += pr.probes_consulted;
    out.trials_consulted += pr.trials_consulted;
  }
  out.probes_computed = counters.probes.load(std::memory_order_relaxed);
  out.trials_computed = counters.trials.load(std::memory_order_relaxed);
  out.cache = stats_delta(before, cache.stats());
  out.fingerprint = sweep_fingerprint(out.points);
  return out;
}

SweepResult run_sweep(const std::vector<SweepPoint>& points,
                      const SweepEngineConfig& cfg) {
  return run_sweep(points, cfg, ThreadPool::global());
}

}  // namespace duti
