#include "stats/calibration_persist.hpp"

#include <array>
#include <cstddef>

#include "testers/calibration.hpp"

namespace duti {

namespace {

constexpr std::size_t kSlotsPerRecord = 8;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

ProbeKey chunk_key(const std::string& id, std::uint64_t chunk) {
  ProbeKey key;
  key.workload = "calib:" + id;
  key.tester = "calib";
  key.flavor = "calib";
  key.param = chunk;
  // The journal's framing has no payload-length field and key.trials must
  // stay constant across chunks (the total is unknown when chunk 0 is
  // fetched), so the length travels as the first WORD of the stored
  // stream instead.
  key.trials = 0;
  key.seed = fnv1a(id);
  return key;
}

std::array<std::uint64_t, kSlotsPerRecord> record_slots(
    const ProbeResult& r) {
  return {r.uniform_successes,      r.far_successes,
          r.trials,                 r.budget,
          r.uniform_aborts_quorum,  r.uniform_aborts_timeout,
          r.far_aborts_quorum,      r.far_aborts_timeout};
}

ProbeResult slots_record(const std::array<std::uint64_t, kSlotsPerRecord>& s) {
  ProbeResult r = probe_result_from_tallies(s[0], s[1], s[2], s[3],
                                            ProbeStop::kExhausted);
  r.uniform_aborts_quorum = s[4];
  r.uniform_aborts_timeout = s[5];
  r.far_aborts_quorum = s[6];
  r.far_aborts_timeout = s[7];
  return r;
}

std::optional<std::vector<std::uint64_t>> load_payload(
    ProbeCache& cache, const std::string& id) {
  const auto first = cache.lookup(chunk_key(id, 0));
  if (!first) return std::nullopt;
  const auto head = record_slots(*first);
  const std::uint64_t len = head[0];  // logical payload length in words
  std::vector<std::uint64_t> payload;
  payload.reserve(len);
  for (std::size_t i = 1; i < kSlotsPerRecord && payload.size() < len; ++i) {
    payload.push_back(head[i]);
  }
  const std::uint64_t total_words = len + 1;  // + the length prefix
  const std::uint64_t chunks =
      (total_words + kSlotsPerRecord - 1) / kSlotsPerRecord;
  for (std::uint64_t c = 1; c < chunks; ++c) {
    const auto rec = cache.lookup(chunk_key(id, c));
    if (!rec) return std::nullopt;  // torn journal: treat as a plain miss
    const auto slots = record_slots(*rec);
    for (std::size_t i = 0; i < kSlotsPerRecord && payload.size() < len; ++i) {
      payload.push_back(slots[i]);
    }
  }
  return payload;
}

void store_payload(ProbeCache& cache, const std::string& id,
                   const std::vector<std::uint64_t>& payload) {
  std::vector<std::uint64_t> stream;
  stream.reserve(payload.size() + 1);
  stream.push_back(payload.size());
  stream.insert(stream.end(), payload.begin(), payload.end());
  const std::uint64_t chunks =
      (stream.size() + kSlotsPerRecord - 1) / kSlotsPerRecord;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    std::array<std::uint64_t, kSlotsPerRecord> slots{};
    for (std::size_t i = 0; i < kSlotsPerRecord; ++i) {
      const std::size_t w = c * kSlotsPerRecord + i;
      if (w < stream.size()) slots[i] = stream[w];
    }
    cache.insert(chunk_key(id, c), slots_record(slots));
  }
}

}  // namespace

void install_calibration_persistence(ProbeCache& cache) {
  CalibMemo::Hooks hooks;
  hooks.load = [&cache](const std::string& id) {
    return load_payload(cache, id);
  };
  hooks.store = [&cache](const std::string& id,
                         const std::vector<std::uint64_t>& payload) {
    store_payload(cache, id, payload);
  };
  CalibMemo::global().install_hooks(std::move(hooks));
}

void uninstall_calibration_persistence() {
  CalibMemo::global().install_hooks(CalibMemo::Hooks{});
}

}  // namespace duti
