#include "stats/harness.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/math.hpp"

namespace duti {

ProbeResult probe_success(const TesterRun& tester,
                          const SourceFactory& uniform_source,
                          const SourceFactory& far_source, std::size_t trials,
                          std::uint64_t seed) {
  require(static_cast<bool>(tester), "probe_success: null tester");
  require(trials >= 1, "probe_success: need at least one trial");
  SuccessCounter uniform_accepts, far_rejects;
  for (std::size_t t = 0; t < trials; ++t) {
    {
      Rng rng = make_rng(seed, 0xF00DULL, t);
      const auto source = uniform_source(rng);
      Rng run_rng = make_rng(seed, 0xBEEFULL, t);
      uniform_accepts.record(tester(*source, run_rng));
    }
    {
      Rng rng = make_rng(seed, 0xFA5ULL, t);
      const auto source = far_source(rng);
      Rng run_rng = make_rng(seed, 0xCAFEULL, t);
      far_rejects.record(!tester(*source, run_rng));
    }
  }
  ProbeResult out;
  out.trials = trials;
  out.uniform_accept_rate = uniform_accepts.rate();
  out.far_reject_rate = far_rejects.rate();
  out.uniform_ci = uniform_accepts.wilson();
  out.far_ci = far_rejects.wilson();
  return out;
}

ProbeResult probe_success_ex(const TesterRunEx& tester,
                             const SourceFactory& uniform_source,
                             const SourceFactory& far_source,
                             std::size_t trials, std::uint64_t seed) {
  require(static_cast<bool>(tester), "probe_success_ex: null tester");
  require(trials >= 1, "probe_success_ex: need at least one trial");
  SuccessCounter uniform_accepts, far_rejects;
  ProbeResult out;
  for (std::size_t t = 0; t < trials; ++t) {
    {
      Rng rng = make_rng(seed, 0xF00DULL, t);
      const auto source = uniform_source(rng);
      Rng run_rng = make_rng(seed, 0xBEEFULL, t);
      const RefereeOutcome o = tester(*source, run_rng);
      uniform_accepts.record(o == RefereeOutcome::kAccept);
      if (o == RefereeOutcome::kAbortQuorum) ++out.uniform_aborts_quorum;
      if (o == RefereeOutcome::kAbortTimeout) ++out.uniform_aborts_timeout;
    }
    {
      Rng rng = make_rng(seed, 0xFA5ULL, t);
      const auto source = far_source(rng);
      Rng run_rng = make_rng(seed, 0xCAFEULL, t);
      const RefereeOutcome o = tester(*source, run_rng);
      far_rejects.record(o == RefereeOutcome::kReject);
      if (o == RefereeOutcome::kAbortQuorum) ++out.far_aborts_quorum;
      if (o == RefereeOutcome::kAbortTimeout) ++out.far_aborts_timeout;
    }
  }
  out.trials = trials;
  out.uniform_accept_rate = uniform_accepts.rate();
  out.far_reject_rate = far_rejects.rate();
  out.uniform_ci = uniform_accepts.wilson();
  out.far_ci = far_rejects.wilson();
  return out;
}

MinSearchResult find_min_param(const ProbeFn& probe,
                               const MinSearchConfig& cfg) {
  require(static_cast<bool>(probe), "find_min_param: null probe");
  require(cfg.lo >= 1 && cfg.lo <= cfg.hi, "find_min_param: bad range");
  MinSearchResult result;

  auto run_probe = [&](std::uint64_t value) {
    ProbeResult r = probe(value);
    result.probes.emplace_back(value, r);
    return r.passes(cfg.target);
  };

  // Exponential bracketing: find the first power-of-two multiple of lo
  // that passes.
  std::uint64_t hi = cfg.lo;
  bool hi_passes = run_probe(hi);
  while (!hi_passes) {
    if (hi >= cfg.hi) {
      result.found = false;
      return result;
    }
    hi = std::min(cfg.hi, hi * 2);
    hi_passes = run_probe(hi);
  }
  if (hi == cfg.lo) {
    result.found = true;
    result.minimum = cfg.lo;
    return result;
  }

  // Binary search in (hi/2, hi]: the largest failing value seen is hi/2.
  std::uint64_t lo = hi / 2;
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (run_probe(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.found = true;
  result.minimum = hi;
  return result;
}

double find_min_param_median(
    const std::function<ProbeFn(std::uint64_t seed)>& make_probe,
    const MinSearchConfig& cfg, unsigned repeats) {
  require(repeats >= 1, "find_min_param_median: repeats >= 1");
  std::vector<double> minima;
  minima.reserve(repeats);
  for (unsigned rep = 0; rep < repeats; ++rep) {
    MinSearchConfig rep_cfg = cfg;
    rep_cfg.seed = derive_seed(cfg.seed, rep);
    const auto result = find_min_param(make_probe(rep_cfg.seed), rep_cfg);
    if (result.found) {
      minima.push_back(static_cast<double>(result.minimum));
    }
  }
  require(!minima.empty(), "find_min_param_median: no search succeeded");
  return median(std::move(minima));
}

}  // namespace duti
