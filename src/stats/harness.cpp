#include "stats/harness.hpp"

#include <algorithm>
#include <array>
#include <exception>
#include <map>
#include <utility>

#include "util/error.hpp"
#include "util/kernels.hpp"
#include "util/math.hpp"

namespace duti {

ProbeResult probe_result_from_tallies(std::uint64_t uniform_successes,
                                      std::uint64_t far_successes,
                                      std::uint64_t trials,
                                      std::uint64_t budget, ProbeStop stop) {
  ProbeResult out;
  out.uniform_successes = uniform_successes;
  out.far_successes = far_successes;
  out.trials = trials;
  out.budget = budget;
  out.stop = stop;
  if (trials > 0) {
    out.uniform_accept_rate = static_cast<double>(uniform_successes) /
                              static_cast<double>(trials);
    out.far_reject_rate =
        static_cast<double>(far_successes) / static_cast<double>(trials);
  }
  out.uniform_ci = wilson_interval(uniform_successes, trials);
  out.far_ci = wilson_interval(far_successes, trials);
  return out;
}

namespace {

// Partial tallies for one chunk of trials, stored as one flat array of
// integer counts so chunk reduction is a single kernels::add_u64 pass.
// Merging chunks in chunk order reproduces the serial tally exactly
// (integer addition, no rounding).
struct ChunkTally {
  enum Field : std::size_t {
    kUniformSuccesses = 0,
    kUniformTrials,
    kFarSuccesses,
    kFarTrials,
    kUniformAbortsQuorum,
    kUniformAbortsTimeout,
    kFarAbortsQuorum,
    kFarAbortsTimeout,
    kFieldCount,
  };
  std::array<std::uint64_t, kFieldCount> counts{};

  std::uint64_t& operator[](Field f) noexcept { return counts[f]; }
  std::uint64_t operator[](Field f) const noexcept { return counts[f]; }

  void record_uniform(bool success) noexcept {
    ++counts[kUniformTrials];
    counts[kUniformSuccesses] += success ? 1 : 0;
  }
  void record_far(bool success) noexcept {
    ++counts[kFarTrials];
    counts[kFarSuccesses] += success ? 1 : 0;
  }

  void merge(const ChunkTally& other) { kernels::add_u64(counts, other.counts); }
};

// Per-worker cache for trial-invariant sources: materialized on first use,
// reused for every later trial that worker runs (the allocation hoist).
struct WorkerSources {
  std::unique_ptr<SampleSource> uniform;
  std::unique_ptr<SampleSource> far;
};

// Materialize (or fetch the cached) source for one trial side.
const SampleSource& trial_source(const SourceSpec& spec, Rng& rng,
                                 std::unique_ptr<SampleSource>& cached,
                                 std::unique_ptr<SampleSource>& fresh) {
  if (spec.trial_invariant()) {
    if (!cached) cached = spec(rng);
    return *cached;
  }
  fresh = spec(rng);
  return *fresh;
}

// Run trials [t0, t1) and fold their tallies into `total`. Trial t derives
// its RNG streams from (seed, salt, t) alone — the GLOBAL trial index — so
// a range executed in batches sees exactly the trials the one-shot probe
// would run, and the full/adaptive probes agree trial-for-trial. Chunks are
// reduced in chunk order; all counts are integers, so the merged tally is
// bit-identical at any thread count.
template <typename UniformRun, typename FarRun>
void run_trial_range(const SourceSpec& uniform_source,
                     const SourceSpec& far_source, std::size_t t0,
                     std::size_t t1, std::uint64_t seed, ThreadPool& pool,
                     std::vector<WorkerSources>& cached,
                     const UniformRun& run_uniform, const FarRun& run_far,
                     ChunkTally& total) {
  const std::size_t count = t1 - t0;
  // ~4 chunks per worker for load balance. The chunk layout varies with the
  // pool size, but the reduction is exact integer addition, so the merged
  // result does not.
  const std::size_t workers = pool.size();
  const std::size_t grain =
      std::max<std::size_t>(1, (count + 4 * workers - 1) / (4 * workers));
  const std::size_t chunks = (count + grain - 1) / grain;

  std::vector<ChunkTally> tallies(chunks);
  pool.parallel_for(
      count, grain, [&](std::size_t begin, std::size_t end, unsigned worker) {
        ChunkTally& tally = tallies[begin / grain];
        WorkerSources& ws = cached[worker];
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t t = t0 + i;
          {
            Rng rng = make_rng(seed, 0xF00DULL, t);
            std::unique_ptr<SampleSource> fresh;
            const SampleSource& source =
                trial_source(uniform_source, rng, ws.uniform, fresh);
            Rng run_rng = make_rng(seed, 0xBEEFULL, t);
            run_uniform(source, run_rng, tally);
          }
          {
            Rng rng = make_rng(seed, 0xFA5ULL, t);
            std::unique_ptr<SampleSource> fresh;
            const SampleSource& source =
                trial_source(far_source, rng, ws.far, fresh);
            Rng run_rng = make_rng(seed, 0xCAFEULL, t);
            run_far(source, run_rng, tally);
          }
        }
      });

  for (const ChunkTally& tally : tallies) total.merge(tally);
}

ProbeResult finalize_tally(const ChunkTally& total, std::uint64_t trials,
                           std::uint64_t budget, ProbeStop stop) {
  ProbeResult out = probe_result_from_tallies(
      total[ChunkTally::kUniformSuccesses], total[ChunkTally::kFarSuccesses],
      trials, budget, stop);
  out.uniform_aborts_quorum = total[ChunkTally::kUniformAbortsQuorum];
  out.uniform_aborts_timeout = total[ChunkTally::kUniformAbortsTimeout];
  out.far_aborts_quorum = total[ChunkTally::kFarAbortsQuorum];
  out.far_aborts_timeout = total[ChunkTally::kFarAbortsTimeout];
  return out;
}

// Full-budget probe engine: one range, no certificates.
template <typename UniformRun, typename FarRun>
ProbeResult probe_engine(const SourceSpec& uniform_source,
                         const SourceSpec& far_source, std::size_t trials,
                         std::uint64_t seed, ThreadPool& pool,
                         const UniformRun& run_uniform, const FarRun& run_far) {
  require(static_cast<bool>(uniform_source), "probe: null uniform factory");
  require(static_cast<bool>(far_source), "probe: null far factory");
  require(trials >= 1, "probe: need at least one trial");
  std::vector<WorkerSources> cached(pool.size());
  ChunkTally total;
  run_trial_range(uniform_source, far_source, 0, trials, seed, pool, cached,
                  run_uniform, run_far, total);
  return finalize_tally(total, trials, trials, ProbeStop::kExhausted);
}

// Adaptive probe engine (DESIGN.md section 8): run deterministic batches,
// after each completed batch consult two certificate families:
//
//   Deterministic ("the budget cannot flip it"): if even with every
//   remaining trial succeeding a side's final rate stays below the target —
//   or with every remaining trial failing both sides stay at/above it — the
//   full-budget pass/fail verdict is already decided, and stopping cannot
//   disagree with it.
//
//   Confidence (Wilson sequence): if both sides' Wilson lower bounds clear
//   the target, or either side's upper bound is below it, at a z corrected
//   for every peek the schedule could make (union bound over 2 sides x K
//   checkpoints), stop; wrong with probability at most cfg.delta.
//
// In every stopping case the returned result's passes(cfg.target) equals
// the certified verdict: Wilson intervals contain the empirical rate, and
// the deterministic bounds sandwich it (worst-case final rates bracket the
// current rate because successes/trials is monotone in both coordinates).
template <typename UniformRun, typename FarRun>
ProbeResult adaptive_engine(const SourceSpec& uniform_source,
                            const SourceSpec& far_source,
                            std::size_t max_trials, std::uint64_t seed,
                            const AdaptiveProbeConfig& cfg, ThreadPool& pool,
                            const UniformRun& run_uniform,
                            const FarRun& run_far) {
  require(static_cast<bool>(uniform_source), "probe: null uniform factory");
  require(static_cast<bool>(far_source), "probe: null far factory");
  require(max_trials >= 1, "adaptive probe: need at least one trial");
  require(cfg.batch >= 1, "adaptive probe: batch must be >= 1");
  require(cfg.target > 0.0 && cfg.target < 1.0,
          "adaptive probe: target in (0,1)");
  require(cfg.delta > 0.0 && cfg.delta < 1.0,
          "adaptive probe: delta in (0,1)");

  // Before this many trials not even a perfect run separates from the
  // target at confidence delta (Hoeffding), so earlier confidence checks
  // only burn union-bound budget.
  const std::size_t min_trials =
      cfg.min_trials != 0 ? cfg.min_trials
                          : hoeffding_trials(1.0 - cfg.target, cfg.delta);
  // Checkpoints at batch boundaries strictly before exhaustion; 2 interval
  // evaluations (uniform + far side) per checkpoint.
  const std::uint64_t checks =
      max_trials > cfg.batch
          ? static_cast<std::uint64_t>((max_trials - 1) / cfg.batch)
          : 0;
  const double z = checks > 0 ? union_bound_z(cfg.delta, 2 * checks) : 0.0;

  std::vector<WorkerSources> cached(pool.size());
  ChunkTally total;
  const double budget_d = static_cast<double>(max_trials);
  std::size_t done = 0;
  while (done < max_trials) {
    const std::size_t next = std::min(done + cfg.batch, max_trials);
    run_trial_range(uniform_source, far_source, done, next, seed, pool,
                    cached, run_uniform, run_far, total);
    done = next;
    if (done == max_trials) break;

    const std::uint64_t us = total[ChunkTally::kUniformSuccesses];
    const std::uint64_t fs = total[ChunkTally::kFarSuccesses];
    const auto remaining = static_cast<std::uint64_t>(max_trials - done);
    // Worst-case FINAL rates if the remaining trials all fail / all succeed.
    const bool pass_sure =
        static_cast<double>(us) / budget_d >= cfg.target &&
        static_cast<double>(fs) / budget_d >= cfg.target;
    const bool fail_sure =
        static_cast<double>(us + remaining) / budget_d < cfg.target ||
        static_cast<double>(fs + remaining) / budget_d < cfg.target;
    if (pass_sure || fail_sure) {
      return finalize_tally(total, done, max_trials,
                            ProbeStop::kDeterministic);
    }
    if (checks > 0 && done >= min_trials) {
      const ProbeResult interim =
          finalize_tally(total, done, max_trials, ProbeStop::kConfidence);
      if (interim.passes_with_margin(cfg.target, z) ||
          interim.fails_with_margin(cfg.target, z)) {
        return interim;
      }
    }
  }
  return finalize_tally(total, done, max_trials, ProbeStop::kExhausted);
}

// Tally adapters shared by the full and adaptive entry points.
struct BoolRuns {
  const TesterRun& tester;
  void uniform(const SampleSource& source, Rng& rng, ChunkTally& tally) const {
    tally.record_uniform(tester(source, rng));
  }
  void far(const SampleSource& source, Rng& rng, ChunkTally& tally) const {
    tally.record_far(!tester(source, rng));
  }
};

struct ExRuns {
  const TesterRunEx& tester;
  void uniform(const SampleSource& source, Rng& rng, ChunkTally& tally) const {
    const RefereeOutcome o = tester(source, rng);
    tally.record_uniform(o == RefereeOutcome::kAccept);
    if (o == RefereeOutcome::kAbortQuorum) {
      ++tally[ChunkTally::kUniformAbortsQuorum];
    }
    if (o == RefereeOutcome::kAbortTimeout) {
      ++tally[ChunkTally::kUniformAbortsTimeout];
    }
  }
  void far(const SampleSource& source, Rng& rng, ChunkTally& tally) const {
    const RefereeOutcome o = tester(source, rng);
    tally.record_far(o == RefereeOutcome::kReject);
    if (o == RefereeOutcome::kAbortQuorum) ++tally[ChunkTally::kFarAbortsQuorum];
    if (o == RefereeOutcome::kAbortTimeout) {
      ++tally[ChunkTally::kFarAbortsTimeout];
    }
  }
};

}  // namespace

ProbeResult probe_success(const TesterRun& tester,
                          const SourceSpec& uniform_source,
                          const SourceSpec& far_source, std::size_t trials,
                          std::uint64_t seed, ThreadPool& pool) {
  require(static_cast<bool>(tester), "probe_success: null tester");
  const BoolRuns runs{tester};
  return probe_engine(
      uniform_source, far_source, trials, seed, pool,
      [&runs](const SampleSource& s, Rng& r, ChunkTally& t) {
        runs.uniform(s, r, t);
      },
      [&runs](const SampleSource& s, Rng& r, ChunkTally& t) {
        runs.far(s, r, t);
      });
}

ProbeResult probe_success(const TesterRun& tester,
                          const SourceSpec& uniform_source,
                          const SourceSpec& far_source, std::size_t trials,
                          std::uint64_t seed) {
  return probe_success(tester, uniform_source, far_source, trials, seed,
                       ThreadPool::global());
}

ProbeResult probe_success_ex(const TesterRunEx& tester,
                             const SourceSpec& uniform_source,
                             const SourceSpec& far_source, std::size_t trials,
                             std::uint64_t seed, ThreadPool& pool) {
  require(static_cast<bool>(tester), "probe_success_ex: null tester");
  const ExRuns runs{tester};
  return probe_engine(
      uniform_source, far_source, trials, seed, pool,
      [&runs](const SampleSource& s, Rng& r, ChunkTally& t) {
        runs.uniform(s, r, t);
      },
      [&runs](const SampleSource& s, Rng& r, ChunkTally& t) {
        runs.far(s, r, t);
      });
}

ProbeResult probe_success_ex(const TesterRunEx& tester,
                             const SourceSpec& uniform_source,
                             const SourceSpec& far_source, std::size_t trials,
                             std::uint64_t seed) {
  return probe_success_ex(tester, uniform_source, far_source, trials, seed,
                          ThreadPool::global());
}

ProbeResult probe_success_adaptive(const TesterRun& tester,
                                   const SourceSpec& uniform_source,
                                   const SourceSpec& far_source,
                                   std::size_t max_trials, std::uint64_t seed,
                                   const AdaptiveProbeConfig& cfg,
                                   ThreadPool& pool) {
  require(static_cast<bool>(tester), "probe_success_adaptive: null tester");
  const BoolRuns runs{tester};
  return adaptive_engine(
      uniform_source, far_source, max_trials, seed, cfg, pool,
      [&runs](const SampleSource& s, Rng& r, ChunkTally& t) {
        runs.uniform(s, r, t);
      },
      [&runs](const SampleSource& s, Rng& r, ChunkTally& t) {
        runs.far(s, r, t);
      });
}

ProbeResult probe_success_adaptive(const TesterRun& tester,
                                   const SourceSpec& uniform_source,
                                   const SourceSpec& far_source,
                                   std::size_t max_trials, std::uint64_t seed,
                                   const AdaptiveProbeConfig& cfg) {
  return probe_success_adaptive(tester, uniform_source, far_source, max_trials,
                                seed, cfg, ThreadPool::global());
}

ProbeResult probe_success_adaptive_ex(const TesterRunEx& tester,
                                      const SourceSpec& uniform_source,
                                      const SourceSpec& far_source,
                                      std::size_t max_trials,
                                      std::uint64_t seed,
                                      const AdaptiveProbeConfig& cfg,
                                      ThreadPool& pool) {
  require(static_cast<bool>(tester), "probe_success_adaptive_ex: null tester");
  const ExRuns runs{tester};
  return adaptive_engine(
      uniform_source, far_source, max_trials, seed, cfg, pool,
      [&runs](const SampleSource& s, Rng& r, ChunkTally& t) {
        runs.uniform(s, r, t);
      },
      [&runs](const SampleSource& s, Rng& r, ChunkTally& t) {
        runs.far(s, r, t);
      });
}

ProbeResult probe_success_adaptive_ex(const TesterRunEx& tester,
                                      const SourceSpec& uniform_source,
                                      const SourceSpec& far_source,
                                      std::size_t max_trials,
                                      std::uint64_t seed,
                                      const AdaptiveProbeConfig& cfg) {
  return probe_success_adaptive_ex(tester, uniform_source, far_source,
                                   max_trials, seed, cfg,
                                   ThreadPool::global());
}

namespace {

// Shared search core. `bracket_probe` may be null; when present (and
// cfg.adaptive_bracket set) it handles the exponential bracketing rungs and
// wide bisection midpoints, while the full-budget probe decides the final
// steps and confirms the returned minimum.
MinSearchResult find_min_param_impl(const ProbeFn& probe,
                                    const ProbeFn* bracket_probe,
                                    const MinSearchConfig& cfg,
                                    ThreadPool& pool) {
  require(static_cast<bool>(probe), "find_min_param: null probe");
  require(cfg.lo >= 1 && cfg.lo <= cfg.hi, "find_min_param: bad range");
  const bool bracketed = bracket_probe != nullptr && cfg.adaptive_bracket &&
                         static_cast<bool>(*bracket_probe);
  MinSearchResult result;

  // probe() is pure per value, so speculative waves land in a cache that the
  // serial decision replay consults. Consulted probes (and only those) enter
  // the audit trail, in the order the serial algorithm would visit them.
  // A speculated value may lie outside the probe's valid range (serial would
  // never evaluate it), so failures are cached per value and rethrown only if
  // the serial decision sequence actually consults that value. Full-budget
  // and bracket evaluations are cached separately (index 0 = full,
  // 1 = bracket): they answer different questions about the same value.
  struct CacheEntry {
    ProbeResult result;
    std::exception_ptr error;
  };
  std::array<std::map<std::uint64_t, CacheEntry>, 2> caches;

  using Want = std::pair<std::uint64_t, bool>;  // (value, use_bracket)
  auto ensure = [&](const std::vector<Want>& values) {
    std::vector<Want> missing;
    for (const Want& w : values) {
      if (!caches[w.second ? 1 : 0].contains(w.first) &&
          std::find(missing.begin(), missing.end(), w) == missing.end()) {
        missing.push_back(w);
      }
    }
    if (missing.empty()) return;
    std::vector<CacheEntry> fresh(missing.size());
    pool.parallel_for(missing.size(), 1,
                      [&](std::size_t begin, std::size_t end, unsigned) {
                        for (std::size_t i = begin; i < end; ++i) {
                          const ProbeFn& fn =
                              missing[i].second ? *bracket_probe : probe;
                          try {
                            fresh[i].result = fn(missing[i].first);
                          } catch (...) {
                            fresh[i].error = std::current_exception();
                          }
                        }
                      });
    for (std::size_t i = 0; i < missing.size(); ++i) {
      caches[missing[i].second ? 1 : 0].emplace(missing[i].first,
                                                std::move(fresh[i]));
    }
  };

  auto consult = [&](std::uint64_t value, bool use_bracket) {
    ensure({{value, use_bracket}});
    const CacheEntry& entry = caches[use_bracket ? 1 : 0].at(value);
    if (entry.error) std::rethrow_exception(entry.error);
    result.probes.emplace_back(value, entry.result);
    return entry.result.passes(cfg.target);
  };

  const std::size_t width = pool.size();

  // Warm-start hint: precompute, in one parallel wave, the exact
  // consultation path the serial replay takes if the minimum is at
  // cfg.hint — the doubling rungs up to the hint's bracket and the
  // bisection midpoints descending to it, each in the flavor the replay
  // will use at that step. The decision replay below never reads the hint,
  // so the result is identical to the unhinted search by construction;
  // this wave only decides WHICH values are already cached when the replay
  // asks. Unlike the blind waves, this runs even from inside a pool worker
  // (the pool shares nested chunks with idle workers), because the hinted
  // path is consulted in full whenever the prediction is right.
  if (cfg.hint >= cfg.lo && cfg.hint <= cfg.hi && width > 1) {
    std::vector<Want> wave;
    std::uint64_t rung = cfg.lo;
    for (;;) {
      wave.emplace_back(rung, bracketed);
      if (rung >= cfg.hint || rung >= cfg.hi) break;
      rung = std::min(cfg.hi, rung * 2);
    }
    if (rung != cfg.lo) {
      std::uint64_t l = rung / 2;
      std::uint64_t h = rung;
      while (h - l > 1) {
        const std::uint64_t m = l + (h - l) / 2;
        wave.emplace_back(m, bracketed && (h - l) > cfg.full_budget_width);
        if (cfg.hint <= m) {
          h = m;
        } else {
          l = m;
        }
      }
    }
    ensure(wave);
  }

  // Exponential bracketing: find the first power-of-two multiple of lo that
  // passes, speculating the next `width` rungs of the doubling ladder.
  // Rungs far from the threshold are exactly where adaptive probes certify
  // fastest, so the bracket flavor handles this whole phase.
  std::uint64_t hi = cfg.lo;
  for (;;) {
    if (width > 1 && !ThreadPool::in_worker()) {
      std::vector<Want> ladder;
      std::uint64_t v = hi;
      for (std::size_t i = 0; i < width; ++i) {
        ladder.emplace_back(v, bracketed);
        if (v >= cfg.hi) break;
        v = std::min(cfg.hi, v * 2);
      }
      ensure(ladder);
    }
    if (consult(hi, bracketed)) break;
    if (hi >= cfg.hi) {
      // Bracket-flavor give-up is only delta-sure; confirm at full budget
      // before declaring the whole range failed.
      if (bracketed && consult(cfg.hi, false)) {
        MinSearchConfig full_cfg = cfg;
        full_cfg.adaptive_bracket = false;
        MinSearchResult rest =
            find_min_param_impl(probe, nullptr, full_cfg, pool);
        rest.probes.insert(rest.probes.begin(), result.probes.begin(),
                           result.probes.end());
        return rest;
      }
      result.found = false;
      return result;
    }
    hi = std::min(cfg.hi, hi * 2);
  }

  std::uint64_t minimum = 0;
  bool minimum_full_backed = false;
  if (hi == cfg.lo) {
    minimum = cfg.lo;
    minimum_full_backed = !bracketed;
  } else {
    // Binary search in (hi/2, hi]: the largest failing value seen is hi/2.
    // Speculation evaluates the next levels of the bisection decision tree
    // (every midpoint the search could reach within the wave budget), each
    // midpoint with the flavor its interval width dictates.
    std::uint64_t lo = hi / 2;
    auto flavor_for = [&](std::uint64_t l, std::uint64_t h) {
      return bracketed && (h - l) > cfg.full_budget_width;
    };
    while (hi - lo > 1) {
      if (width > 1 && !ThreadPool::in_worker()) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> frontier{
            {lo, hi}};
        std::vector<std::pair<std::uint64_t, std::uint64_t>> next;
        std::vector<Want> wave;
        while (!frontier.empty() && wave.size() < width) {
          next.clear();
          for (const auto& [l, h] : frontier) {
            if (h - l <= 1 || wave.size() >= width) continue;
            const std::uint64_t m = l + (h - l) / 2;
            wave.emplace_back(m, flavor_for(l, h));
            next.emplace_back(l, m);
            next.emplace_back(m, h);
          }
          frontier.swap(next);
        }
        ensure(wave);
      }
      const std::uint64_t mid = lo + (hi - lo) / 2;
      const bool use_bracket = flavor_for(lo, hi);
      if (consult(mid, use_bracket)) {
        hi = mid;
        minimum_full_backed = !use_bracket;
      } else {
        lo = mid;
      }
    }
    minimum = hi;
  }

  // The returned minimum must carry full-budget evidence. If its pass came
  // from the bracket flavor, confirm; a failed confirmation (the bracket
  // certificate mis-fired, probability <= its delta) resumes the search
  // above the refuted value with full-budget probes.
  if (bracketed && !minimum_full_backed) {
    if (!consult(minimum, false)) {
      if (minimum >= cfg.hi) {
        result.found = false;
        return result;
      }
      MinSearchConfig rest_cfg = cfg;
      rest_cfg.lo = minimum + 1;
      rest_cfg.adaptive_bracket = false;
      MinSearchResult rest =
          find_min_param_impl(probe, nullptr, rest_cfg, pool);
      rest.probes.insert(rest.probes.begin(), result.probes.begin(),
                         result.probes.end());
      return rest;
    }
  }
  result.found = true;
  result.minimum = minimum;
  return result;
}

}  // namespace

MinSearchResult find_min_param(const ProbeFn& probe,
                               const MinSearchConfig& cfg, ThreadPool& pool) {
  return find_min_param_impl(probe, nullptr, cfg, pool);
}

MinSearchResult find_min_param(const ProbeFn& probe,
                               const MinSearchConfig& cfg) {
  return find_min_param(probe, cfg, ThreadPool::global());
}

MinSearchResult find_min_param(const ProbeFn& probe,
                               const ProbeFn& bracket_probe,
                               const MinSearchConfig& cfg, ThreadPool& pool) {
  return find_min_param_impl(probe, &bracket_probe, cfg, pool);
}

MinSearchResult find_min_param(const ProbeFn& probe,
                               const ProbeFn& bracket_probe,
                               const MinSearchConfig& cfg) {
  return find_min_param(probe, bracket_probe, cfg, ThreadPool::global());
}

double find_min_param_median(
    const std::function<ProbeFn(std::uint64_t seed)>& make_probe,
    const MinSearchConfig& cfg, unsigned repeats, ThreadPool& pool) {
  require(repeats >= 1, "find_min_param_median: repeats >= 1");
  // Build every repeat's probe on the calling thread (the factory need not
  // be thread-safe; the probes themselves must be).
  std::vector<ProbeFn> probes;
  probes.reserve(repeats);
  for (unsigned rep = 0; rep < repeats; ++rep) {
    probes.push_back(make_probe(derive_seed(cfg.seed, rep)));
  }
  // Repeats are independent searches; run them across the pool and reduce
  // the per-repeat minima in repeat order (same order as the serial loop).
  std::vector<MinSearchResult> results(repeats);
  pool.parallel_for(repeats, 1,
                    [&](std::size_t begin, std::size_t end, unsigned) {
                      for (std::size_t rep = begin; rep < end; ++rep) {
                        MinSearchConfig rep_cfg = cfg;
                        rep_cfg.seed = derive_seed(cfg.seed, rep);
                        results[rep] =
                            find_min_param(probes[rep], rep_cfg, pool);
                      }
                    });
  std::vector<double> minima;
  minima.reserve(repeats);
  for (const MinSearchResult& r : results) {
    if (r.found) minima.push_back(static_cast<double>(r.minimum));
  }
  require(!minima.empty(), "find_min_param_median: no search succeeded");
  return median(std::move(minima));
}

double find_min_param_median(
    const std::function<ProbeFn(std::uint64_t seed)>& make_probe,
    const MinSearchConfig& cfg, unsigned repeats) {
  return find_min_param_median(make_probe, cfg, repeats,
                               ThreadPool::global());
}

}  // namespace duti
