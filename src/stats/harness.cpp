#include "stats/harness.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <utility>

#include "util/error.hpp"
#include "util/math.hpp"

namespace duti {

namespace {

// Partial tallies for one chunk of trials. All fields are integer counts,
// so merging chunks in chunk order reproduces the serial tally exactly.
struct ChunkTally {
  SuccessCounter uniform_accepts;
  SuccessCounter far_rejects;
  std::uint64_t uniform_aborts_quorum = 0;
  std::uint64_t uniform_aborts_timeout = 0;
  std::uint64_t far_aborts_quorum = 0;
  std::uint64_t far_aborts_timeout = 0;
};

// Per-worker cache for trial-invariant sources: materialized on first use,
// reused for every later trial that worker runs (the allocation hoist).
struct WorkerSources {
  std::unique_ptr<SampleSource> uniform;
  std::unique_ptr<SampleSource> far;
};

// Materialize (or fetch the cached) source for one trial side.
const SampleSource& trial_source(const SourceSpec& spec, Rng& rng,
                                 std::unique_ptr<SampleSource>& cached,
                                 std::unique_ptr<SampleSource>& fresh) {
  if (spec.trial_invariant()) {
    if (!cached) cached = spec(rng);
    return *cached;
  }
  fresh = spec(rng);
  return *fresh;
}

// Shared probe engine. `run_uniform` / `run_far` execute the tester against
// one source and record into the chunk tally; everything else (seed
// derivation, sharding, source caching, deterministic reduction) is common
// to probe_success and probe_success_ex.
template <typename UniformRun, typename FarRun>
ProbeResult probe_engine(const SourceSpec& uniform_source,
                         const SourceSpec& far_source, std::size_t trials,
                         std::uint64_t seed, ThreadPool& pool,
                         const UniformRun& run_uniform, const FarRun& run_far) {
  require(static_cast<bool>(uniform_source), "probe: null uniform factory");
  require(static_cast<bool>(far_source), "probe: null far factory");
  require(trials >= 1, "probe: need at least one trial");

  // ~4 chunks per worker for load balance. The chunk layout varies with the
  // pool size, but the reduction is exact integer addition, so the merged
  // result does not.
  const std::size_t workers = pool.size();
  const std::size_t grain =
      std::max<std::size_t>(1, (trials + 4 * workers - 1) / (4 * workers));
  const std::size_t chunks = (trials + grain - 1) / grain;

  std::vector<ChunkTally> tallies(chunks);
  std::vector<WorkerSources> cached(workers);

  pool.parallel_for(
      trials, grain,
      [&](std::size_t begin, std::size_t end, unsigned worker) {
        ChunkTally& tally = tallies[begin / grain];
        WorkerSources& ws = cached[worker];
        for (std::size_t t = begin; t < end; ++t) {
          {
            Rng rng = make_rng(seed, 0xF00DULL, t);
            std::unique_ptr<SampleSource> fresh;
            const SampleSource& source =
                trial_source(uniform_source, rng, ws.uniform, fresh);
            Rng run_rng = make_rng(seed, 0xBEEFULL, t);
            run_uniform(source, run_rng, tally);
          }
          {
            Rng rng = make_rng(seed, 0xFA5ULL, t);
            std::unique_ptr<SampleSource> fresh;
            const SampleSource& source =
                trial_source(far_source, rng, ws.far, fresh);
            Rng run_rng = make_rng(seed, 0xCAFEULL, t);
            run_far(source, run_rng, tally);
          }
        }
      });

  // Deterministic reduction: fold chunk tallies in chunk order.
  ProbeResult out;
  SuccessCounter uniform_accepts, far_rejects;
  for (const ChunkTally& tally : tallies) {
    uniform_accepts.merge(tally.uniform_accepts);
    far_rejects.merge(tally.far_rejects);
    out.uniform_aborts_quorum += tally.uniform_aborts_quorum;
    out.uniform_aborts_timeout += tally.uniform_aborts_timeout;
    out.far_aborts_quorum += tally.far_aborts_quorum;
    out.far_aborts_timeout += tally.far_aborts_timeout;
  }
  out.trials = trials;
  out.uniform_accept_rate = uniform_accepts.rate();
  out.far_reject_rate = far_rejects.rate();
  out.uniform_ci = uniform_accepts.wilson();
  out.far_ci = far_rejects.wilson();
  return out;
}

}  // namespace

ProbeResult probe_success(const TesterRun& tester,
                          const SourceSpec& uniform_source,
                          const SourceSpec& far_source, std::size_t trials,
                          std::uint64_t seed, ThreadPool& pool) {
  require(static_cast<bool>(tester), "probe_success: null tester");
  return probe_engine(
      uniform_source, far_source, trials, seed, pool,
      [&tester](const SampleSource& source, Rng& rng, ChunkTally& tally) {
        tally.uniform_accepts.record(tester(source, rng));
      },
      [&tester](const SampleSource& source, Rng& rng, ChunkTally& tally) {
        tally.far_rejects.record(!tester(source, rng));
      });
}

ProbeResult probe_success(const TesterRun& tester,
                          const SourceSpec& uniform_source,
                          const SourceSpec& far_source, std::size_t trials,
                          std::uint64_t seed) {
  return probe_success(tester, uniform_source, far_source, trials, seed,
                       ThreadPool::global());
}

ProbeResult probe_success_ex(const TesterRunEx& tester,
                             const SourceSpec& uniform_source,
                             const SourceSpec& far_source, std::size_t trials,
                             std::uint64_t seed, ThreadPool& pool) {
  require(static_cast<bool>(tester), "probe_success_ex: null tester");
  return probe_engine(
      uniform_source, far_source, trials, seed, pool,
      [&tester](const SampleSource& source, Rng& rng, ChunkTally& tally) {
        const RefereeOutcome o = tester(source, rng);
        tally.uniform_accepts.record(o == RefereeOutcome::kAccept);
        if (o == RefereeOutcome::kAbortQuorum) ++tally.uniform_aborts_quorum;
        if (o == RefereeOutcome::kAbortTimeout) ++tally.uniform_aborts_timeout;
      },
      [&tester](const SampleSource& source, Rng& rng, ChunkTally& tally) {
        const RefereeOutcome o = tester(source, rng);
        tally.far_rejects.record(o == RefereeOutcome::kReject);
        if (o == RefereeOutcome::kAbortQuorum) ++tally.far_aborts_quorum;
        if (o == RefereeOutcome::kAbortTimeout) ++tally.far_aborts_timeout;
      });
}

ProbeResult probe_success_ex(const TesterRunEx& tester,
                             const SourceSpec& uniform_source,
                             const SourceSpec& far_source, std::size_t trials,
                             std::uint64_t seed) {
  return probe_success_ex(tester, uniform_source, far_source, trials, seed,
                          ThreadPool::global());
}

MinSearchResult find_min_param(const ProbeFn& probe,
                               const MinSearchConfig& cfg, ThreadPool& pool) {
  require(static_cast<bool>(probe), "find_min_param: null probe");
  require(cfg.lo >= 1 && cfg.lo <= cfg.hi, "find_min_param: bad range");
  MinSearchResult result;

  // probe() is pure per value, so speculative waves land in a cache that the
  // serial decision replay consults. Consulted probes (and only those) enter
  // the audit trail, in the order the serial algorithm would visit them.
  // A speculated value may lie outside the probe's valid range (serial would
  // never evaluate it), so failures are cached per value and rethrown only if
  // the serial decision sequence actually consults that value.
  struct CacheEntry {
    ProbeResult result;
    std::exception_ptr error;
  };
  std::map<std::uint64_t, CacheEntry> cache;

  auto ensure = [&](const std::vector<std::uint64_t>& values) {
    std::vector<std::uint64_t> missing;
    for (const std::uint64_t v : values) {
      if (!cache.contains(v) &&
          std::find(missing.begin(), missing.end(), v) == missing.end()) {
        missing.push_back(v);
      }
    }
    if (missing.empty()) return;
    std::vector<CacheEntry> fresh(missing.size());
    pool.parallel_for(missing.size(), 1,
                      [&](std::size_t begin, std::size_t end, unsigned) {
                        for (std::size_t i = begin; i < end; ++i) {
                          try {
                            fresh[i].result = probe(missing[i]);
                          } catch (...) {
                            fresh[i].error = std::current_exception();
                          }
                        }
                      });
    for (std::size_t i = 0; i < missing.size(); ++i) {
      cache.emplace(missing[i], std::move(fresh[i]));
    }
  };

  auto consult = [&](std::uint64_t value) {
    ensure({value});
    const CacheEntry& entry = cache.at(value);
    if (entry.error) std::rethrow_exception(entry.error);
    result.probes.emplace_back(value, entry.result);
    return entry.result.passes(cfg.target);
  };

  const std::size_t width = pool.size();

  // Exponential bracketing: find the first power-of-two multiple of lo that
  // passes, speculating the next `width` rungs of the doubling ladder.
  std::uint64_t hi = cfg.lo;
  for (;;) {
    if (width > 1 && !ThreadPool::in_worker()) {
      std::vector<std::uint64_t> ladder;
      std::uint64_t v = hi;
      for (std::size_t i = 0; i < width; ++i) {
        ladder.push_back(v);
        if (v >= cfg.hi) break;
        v = std::min(cfg.hi, v * 2);
      }
      ensure(ladder);
    }
    if (consult(hi)) break;
    if (hi >= cfg.hi) {
      result.found = false;
      return result;
    }
    hi = std::min(cfg.hi, hi * 2);
  }
  if (hi == cfg.lo) {
    result.found = true;
    result.minimum = cfg.lo;
    return result;
  }

  // Binary search in (hi/2, hi]: the largest failing value seen is hi/2.
  // Speculation evaluates the next levels of the bisection decision tree
  // (every midpoint the search could reach within the wave budget).
  std::uint64_t lo = hi / 2;
  while (hi - lo > 1) {
    if (width > 1 && !ThreadPool::in_worker()) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> frontier{{lo, hi}};
      std::vector<std::pair<std::uint64_t, std::uint64_t>> next;
      std::vector<std::uint64_t> wave;
      while (!frontier.empty() && wave.size() < width) {
        next.clear();
        for (const auto& [l, h] : frontier) {
          if (h - l <= 1 || wave.size() >= width) continue;
          const std::uint64_t m = l + (h - l) / 2;
          wave.push_back(m);
          next.emplace_back(l, m);
          next.emplace_back(m, h);
        }
        frontier.swap(next);
      }
      ensure(wave);
    }
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (consult(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.found = true;
  result.minimum = hi;
  return result;
}

MinSearchResult find_min_param(const ProbeFn& probe,
                               const MinSearchConfig& cfg) {
  return find_min_param(probe, cfg, ThreadPool::global());
}

double find_min_param_median(
    const std::function<ProbeFn(std::uint64_t seed)>& make_probe,
    const MinSearchConfig& cfg, unsigned repeats, ThreadPool& pool) {
  require(repeats >= 1, "find_min_param_median: repeats >= 1");
  // Build every repeat's probe on the calling thread (the factory need not
  // be thread-safe; the probes themselves must be).
  std::vector<ProbeFn> probes;
  probes.reserve(repeats);
  for (unsigned rep = 0; rep < repeats; ++rep) {
    probes.push_back(make_probe(derive_seed(cfg.seed, rep)));
  }
  // Repeats are independent searches; run them across the pool and reduce
  // the per-repeat minima in repeat order (same order as the serial loop).
  std::vector<MinSearchResult> results(repeats);
  pool.parallel_for(repeats, 1,
                    [&](std::size_t begin, std::size_t end, unsigned) {
                      for (std::size_t rep = begin; rep < end; ++rep) {
                        MinSearchConfig rep_cfg = cfg;
                        rep_cfg.seed = derive_seed(cfg.seed, rep);
                        results[rep] =
                            find_min_param(probes[rep], rep_cfg, pool);
                      }
                    });
  std::vector<double> minima;
  minima.reserve(repeats);
  for (const MinSearchResult& r : results) {
    if (r.found) minima.push_back(static_cast<double>(r.minimum));
  }
  require(!minima.empty(), "find_min_param_median: no search succeeded");
  return median(std::move(minima));
}

double find_min_param_median(
    const std::function<ProbeFn(std::uint64_t seed)>& make_probe,
    const MinSearchConfig& cfg, unsigned repeats) {
  return find_min_param_median(make_probe, cfg, repeats,
                               ThreadPool::global());
}

}  // namespace duti
