#include "stats/workloads.hpp"

#include "dist/generators.hpp"
#include "dist/nu_z.hpp"
#include "util/error.hpp"

namespace duti::workloads {

SourceSpec uniform_factory(std::uint64_t n) {
  require(n >= 1, "uniform_factory: n must be positive");
  return {[n](Rng& /*rng*/) -> std::unique_ptr<SampleSource> {
            return std::make_unique<UniformSource>(n);
          },
          /*trial_invariant=*/true};
}

SourceSpec paninski_far_factory(std::uint64_t n, double eps) {
  require(n >= 2 && n % 2 == 0, "paninski_far_factory: n must be even");
  require(eps > 0.0 && eps <= 1.0, "paninski_far_factory: eps in (0,1]");
  return {[n, eps](Rng& rng) -> std::unique_ptr<SampleSource> {
    return std::make_unique<DistributionSource>(gen::paninski(n, eps, rng));
  }};
}

SourceSpec nu_z_far_factory(unsigned ell, double eps) {
  require(ell >= 1 && ell <= 30, "nu_z_far_factory: ell in [1,30]");
  require(eps > 0.0 && eps <= 1.0, "nu_z_far_factory: eps in (0,1]");
  return {[ell, eps](Rng& rng) -> std::unique_ptr<SampleSource> {
    auto z = PerturbationVector::random(ell, rng);
    return std::make_unique<NuZSource>(NuZ(CubeDomain(ell), std::move(z), eps));
  }};
}

SourceSpec fixed_factory(DiscreteDistribution dist) {
  return {[dist = std::move(dist)](Rng& /*rng*/)
              -> std::unique_ptr<SampleSource> {
            return std::make_unique<DistributionSource>(dist);
          },
          /*trial_invariant=*/true};
}

}  // namespace duti::workloads
