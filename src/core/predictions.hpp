// Closed-form predictors for every theorem in the paper, used by the
// benches to draw the "paper says" reference curve next to the measured
// one, and by examples/lowerbound_explorer to answer "how many samples does
// the paper say each node needs?" for concrete (n, k, eps, T, r).
//
// Asymptotic constants are not specified by the paper; each predictor takes
// an explicit constant multiplier `c` (default 1) so the benches can fit it
// once per experiment and then compare *shapes*.
#pragma once

#include <vector>

namespace duti::predict {

/// Centralized uniformity testing [Paninski'08]: q = Theta(sqrt(n)/eps^2).
[[nodiscard]] double centralized_q(double n, double eps, double c = 1.0);

/// Theorem 1.1 / 6.1 — any decision rule, 1-bit messages:
/// q = Omega( min(sqrt(n/k), n/k) / eps^2 ).
[[nodiscard]] double thm11_any_rule_q(double n, double k, double eps,
                                      double c = 1.0);

/// Theorem 6.4 — r-bit messages:
/// q = Omega( min(sqrt(n/(2^r k)), n/(2^r k)) / eps^2 ).
[[nodiscard]] double thm64_multibit_q(double n, double k, double eps,
                                      unsigned r, double c = 1.0);

/// Theorem 1.2 / 6.5 — AND rule (valid for k <= 2^{c2/eps}):
/// q = Omega( sqrt(n) / (log^2(k) eps^2) ).
[[nodiscard]] double thm12_and_rule_q(double n, double k, double eps,
                                      double c = 1.0);

/// Theorem 1.3 — T-threshold rule (valid for k <= sqrt(n) and
/// T < c/(eps^2 log^2(k/eps))):
/// q = Omega( sqrt(n) / (T log^2(k/eps) eps^2) ).
[[nodiscard]] double thm13_threshold_q(double n, double k, double eps,
                                       double t, double c = 1.0);
[[nodiscard]] bool thm13_threshold_applies(double n, double k, double eps,
                                           double t, double c = 1.0);

/// Theorem 1.4 — learning to l1 error delta with q queries per node:
/// k = Omega(n^2 / q^2).
[[nodiscard]] double thm14_learning_k(double n, double q, double c = 1.0);

/// Upper bounds from Fischer-Meir-Oshman [7], for the "who wins" curves:
/// AND-rule tester: q = O( sqrt(n) / (k^{Theta(eps^2)} eps^2) ).
[[nodiscard]] double fmo_and_tester_q(double n, double k, double eps,
                                      double c = 1.0,
                                      double exponent_c = 1.0);

/// Threshold tester [7]: q = O( sqrt(n/k) / eps^2 ).
[[nodiscard]] double fmo_threshold_tester_q(double n, double k, double eps,
                                            double c = 1.0);

/// Section 6.2 asymmetric-rate model: tau = Theta( sqrt(n) /
/// (eps^2 ||rates||_2) ).
[[nodiscard]] double asymmetric_tau(double n, double eps,
                                    const std::vector<double>& rates,
                                    double c = 1.0);

/// Single-sample regime [1]: k = Theta( n / (2^{r/2} eps^2) ) nodes for
/// uniformity testing with r-bit messages.
[[nodiscard]] double act_single_sample_k(double n, double eps, unsigned r,
                                         double c = 1.0);

}  // namespace duti::predict
