// The main lemmas' bound formulas (Lemmas 5.1, 4.2, 4.3, 4.4), as plain
// functions of (n, q, eps, var(G), m). Each comes with a validity predicate
// capturing the lemma's hypothesis on q. The benches compare these bounds
// to exact/Monte-Carlo evaluations of the left-hand sides from
// MessageAnalysis, confirming the inequalities and showing where each bound
// is tight.
#pragma once

namespace duti::bounds {

/// Lemma 5.1 hypothesis: q <= sqrt(n) / (4 eps^2).
[[nodiscard]] bool lemma51_valid(double n, double q, double eps);

/// Lemma 5.1: |E_z[nu_z(G)] - mu(G)| <= (4 q eps^2 / sqrt(n)) sqrt(var G).
[[nodiscard]] double lemma51_bound(double n, double q, double eps,
                                   double var_g);

/// Lemma 4.2 hypothesis: q <= sqrt(n) / (20 eps^2).
[[nodiscard]] bool lemma42_valid(double n, double q, double eps);

/// Lemma 4.2: E_z[|nu_z(G) - mu(G)|^2]
///            <= (20 q^2 eps^4 / n + q eps^2 / n) var(G).
[[nodiscard]] double lemma42_bound(double n, double q, double eps,
                                   double var_g);

/// Lemma 4.3 hypothesis:
/// q <= min( sqrt(n)/(40 m^2 eps^2), sqrt(n)/(40 m^2 eps^2)^{m+1} ).
[[nodiscard]] bool lemma43_valid(double n, double q, double eps, unsigned m);

/// Lemma 4.3: |E_z[nu_z(G)] - mu(G)|
///   <= (q/sqrt(n) + (q/sqrt(n))^{1/(2m+2)}) 40 m^2 eps^2
///      var(G)^{(2m+1)/(2m+2)}.
[[nodiscard]] double lemma43_bound(double n, double q, double eps, unsigned m,
                                   double var_g);

/// Lemma 4.4 hypothesis:
/// q <= min( sqrt(n)/((40m)^2 eps^2)^{m+1}, sqrt(n)/((40m)^2 eps^2) ).
[[nodiscard]] bool lemma44_valid(double n, double q, double eps, unsigned m);

/// Lemma 4.4 (with explicit constant C):
///   E_z[|nu_z(G)-mu(G)|^2] <= 2 eps^2 q / n * var(G)
///     + C (q/sqrt(n) + (q/sqrt(n))^{1/(m+1)}) m^2 eps^2
///       var(G)^{2 - 1/(m+1)}.
[[nodiscard]] double lemma44_bound(double n, double q, double eps, unsigned m,
                                   double var_g, double big_c = 1.0);

}  // namespace duti::bounds
