// The r-bit generalization of the message analysis (end of Section 1:
// "our results generalize to any number l >= 1 of bits: the lower bounds
// decay as 2^{-Theta(l)}").
//
// A player's behaviour is now a map G : tuples -> {0, ..., 2^r - 1}. The
// information the referee receives from one player is the divergence
// between the message distribution under nu_z^q and under uniform:
//
//   D_z = D( G#nu_z^q  ||  G#mu^q )      (pushforward distributions)
//
// This class computes both pushforwards exactly by enumeration, the KL
// divergence per perturbation vector, and its expectation over z — the
// r-bit analogue of the quantity Lemma 4.2 caps. The accompanying tests
// and bench check the 2^{-Theta(r)} style behaviour: splitting the same
// statistic across more output symbols raises the per-player divergence,
// but never beyond the data-processing ceiling given by the full
// likelihood.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/sample_tuple.hpp"
#include "dist/nu_z.hpp"
#include "util/rng.hpp"

namespace duti {

class MultibitMessageAnalysis {
 public:
  /// `message` maps a packed sample tuple to a symbol in [0, 2^r).
  MultibitMessageAnalysis(SampleTupleCodec codec, unsigned r,
                          std::function<std::uint32_t(std::uint64_t)> message);

  [[nodiscard]] unsigned r() const noexcept { return r_; }
  [[nodiscard]] std::uint64_t num_symbols() const noexcept {
    return 1ULL << r_;
  }
  [[nodiscard]] const SampleTupleCodec& codec() const noexcept {
    return codec_;
  }

  /// Pushforward of the uniform tuple distribution through the message map
  /// (computed once, cached).
  [[nodiscard]] const std::vector<double>& uniform_pushforward() const;

  /// Pushforward of nu_z^q through the message map (exact enumeration).
  [[nodiscard]] std::vector<double> nu_z_pushforward(const NuZ& nu) const;

  /// KL divergence D(message | nu_z || message | uniform) in bits.
  [[nodiscard]] double divergence_given_z(const NuZ& nu) const;

  /// Exact E_z over all 2^{2^ell} perturbation vectors (ell <= 4).
  [[nodiscard]] double expected_divergence_exact(double eps) const;

  /// Monte-Carlo over `z_trials` random perturbation vectors.
  [[nodiscard]] double expected_divergence_mc(double eps,
                                              std::size_t z_trials,
                                              Rng& rng) const;

  /// Data-processing ceiling: the divergence of the FULL sample tuple,
  /// E_z[D(nu_z^q || mu^q)] — no message function can exceed it.
  [[nodiscard]] static double full_tuple_divergence_exact(
      const SampleTupleCodec& codec, double eps);

 private:
  SampleTupleCodec codec_;
  unsigned r_;
  std::function<std::uint32_t(std::uint64_t)> message_;
  mutable std::vector<double> uniform_push_;
};

/// The first r bits of the first sample: a "useless" map carrying no
/// collision information — its divergence should be ~0 under the mixture.
/// (The collision-count message map lives in testers/message_maps.hpp,
/// next to the tester encodings it mirrors.)
[[nodiscard]] std::function<std::uint32_t(std::uint64_t)>
first_sample_prefix_message(const SampleTupleCodec& codec, unsigned r);

}  // namespace duti
