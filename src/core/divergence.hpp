// The information-theoretic pipeline of Section 6: per-player KL divergence
// between the bit sent under nu_z and under uniform, the chi-squared upper
// bound (Fact 6.3), additivity over independent players (Fact 6.2), and
// the success requirement (inequality (10)) that drives Theorem 6.1.
//
// All divergences here are in bits (log base 2), matching Fact 6.3's 1/ln 2.
#pragma once

#include <vector>

namespace duti {

/// KL divergence D(B(alpha) || B(beta)) between Bernoulli random variables,
/// in bits. Returns +inf when beta in {0,1} disagrees with alpha.
[[nodiscard]] double kl_bernoulli(double alpha, double beta);

/// Fact 6.3 right-hand side: (alpha - beta)^2 / (beta (1-beta) ln 2).
/// Upper-bounds kl_bernoulli(alpha, beta).
[[nodiscard]] double chi2_bernoulli_bound(double alpha, double beta);

/// KL divergence between two finite distributions given as pmf vectors
/// (bits); used to verify additivity across independent players.
[[nodiscard]] double kl_pmf(const std::vector<double>& p,
                            const std::vector<double>& q);

/// Inequality (10): to succeed with probability 1 - delta the total (over
/// players) expected divergence must exceed (1/10) log2(1/delta). Returns
/// that threshold.
[[nodiscard]] double required_total_divergence(double delta);

/// The Lemma 4.2-based per-player divergence cap used in the proof of
/// Theorem 6.1 (inequality (12)):
///   E_z[D] <= (20 q^2 eps^4 / n + q eps^2 / n) / ln 2.
[[nodiscard]] double per_player_divergence_cap(double n, double q,
                                               double eps);

/// Solving (13) for q: the smallest q at which k players *could* reach the
/// required divergence, i.e. the Theorem 6.1 lower bound with explicit
/// constants. Returns the bound on q implied by
///   k * cap(q) >= (1/10) log2(1/delta).
[[nodiscard]] double theorem61_q_lower_bound(double n, double k, double eps,
                                             double delta = 1.0 / 3.0);

}  // namespace duti
