// Analysis of a single player's message function (Section 4).
//
// The player's behaviour is a Boolean function G : {-1,1}^{(ell+1)q} -> {0,1}
// mapping q samples to the bit it sends. This class computes, exactly (by
// enumeration) or by Monte-Carlo:
//
//   * mu(G)     — acceptance probability under uniform samples,
//   * nu_z(G)   — acceptance probability under nu_z^q,
//   * the Lemma 4.1 Fourier-side expression for nu_z(G) - mu(G),
//   * moments over a random perturbation z of the difference
//     nu_z(G) - mu(G) — the quantities bounded by Lemmas 4.2/4.3/4.4.
#pragma once

#include <cstdint>

#include "core/sample_tuple.hpp"
#include "dist/nu_z.hpp"
#include "fourier/boolean_function.hpp"
#include "util/rng.hpp"

namespace duti {

/// Moments of D(z) = nu_z(G) - mu(G) over the perturbation vector z.
struct ZMoments {
  double mean_diff = 0.0;        // E_z[D(z)]        (Lemmas 5.1, 4.3)
  double mean_abs_diff = 0.0;    // E_z[|D(z)|]
  double second_moment = 0.0;    // E_z[D(z)^2]      (Lemmas 4.2, 4.4)
};

class MessageAnalysis {
 public:
  /// `g` must be {0,1}-valued on exactly (ell+1)*q variables.
  MessageAnalysis(SampleTupleCodec codec, BooleanCubeFunction g);

  [[nodiscard]] const SampleTupleCodec& codec() const noexcept {
    return codec_;
  }
  [[nodiscard]] const BooleanCubeFunction& g() const noexcept { return g_; }

  /// mu(G): mean of G over the uniform distribution on tuples.
  [[nodiscard]] double mu() const { return g_.mean(); }

  /// var(G) as in Section 2.
  [[nodiscard]] double variance() const { return g_.variance(); }

  /// nu_z(G) = E_{S ~ nu_z^q}[G(S)], computed exactly by summing over all
  /// n^q tuples.
  [[nodiscard]] double nu_z_exact(const NuZ& nu) const;

  /// Monte-Carlo estimate of nu_z(G) from `trials` sample tuples.
  [[nodiscard]] double nu_z_mc(const NuZ& nu, std::size_t trials,
                               Rng& rng) const;

  /// The Lemma 4.1 right-hand side:
  ///   (2^q / n^q) sum_{S != empty} sum_x eps^{|S|}
  ///                  prod_{j in S} z(x_j) * G_x_hat(S).
  /// Must equal nu_z_exact(nu) - mu() exactly; tests verify.
  [[nodiscard]] double lemma41_fourier_difference(const NuZ& nu) const;

  /// Exact moments over ALL 2^{2^ell} perturbation vectors (ell <= 4).
  [[nodiscard]] ZMoments z_moments_exact(double eps) const;

  /// Monte-Carlo moments over `z_trials` random perturbation vectors, with
  /// nu_z(G) computed exactly per z.
  [[nodiscard]] ZMoments z_moments_mc(double eps, std::size_t z_trials,
                                      Rng& rng) const;

 private:
  SampleTupleCodec codec_;
  BooleanCubeFunction g_;
};

}  // namespace duti
