// Claim 3.1: the q-fold product of nu_z has the sparse character expansion
//
//   nu_z^q(x, s) = (1/n^q) sum_{S subseteq [q]} eps^{|S|} chi_S(s)
//                                                 prod_{j in S} z(x_j).
//
// Both sides are computable; tests verify they agree exactly on every tuple.
#pragma once

#include <cstdint>

#include "core/sample_tuple.hpp"
#include "dist/nu_z.hpp"

namespace duti {

/// Direct product: prod_j (1 + s_j z(x_j) eps) / n.
[[nodiscard]] double nu_zq_pmf_direct(const SampleTupleCodec& codec,
                                      const NuZ& nu, std::uint64_t packed);

/// Character expansion of Claim 3.1, summed over all 2^q subsets S.
[[nodiscard]] double nu_zq_pmf_expansion(const SampleTupleCodec& codec,
                                         const NuZ& nu, std::uint64_t packed);

}  // namespace duti
