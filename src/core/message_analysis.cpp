#include "core/message_analysis.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "core/claim31.hpp"
#include "util/error.hpp"

namespace duti {

MessageAnalysis::MessageAnalysis(SampleTupleCodec codec, BooleanCubeFunction g)
    : codec_(codec), g_(std::move(g)) {
  require(g_.num_vars() == codec_.total_bits(),
          "MessageAnalysis: G must have (ell+1)*q variables");
  require(g_.is_boolean01(), "MessageAnalysis: G must be {0,1}-valued");
}

double MessageAnalysis::nu_z_exact(const NuZ& nu) const {
  require(nu.domain().ell() == codec_.domain().ell(),
          "nu_z_exact: domain mismatch");
  double acc = 0.0;
  for (std::uint64_t t = 0; t < codec_.num_tuples(); ++t) {
    const double gv = g_.value(t);
    if (gv != 0.0) acc += gv * nu_zq_pmf_direct(codec_, nu, t);
  }
  return acc;
}

double MessageAnalysis::nu_z_mc(const NuZ& nu, std::size_t trials,
                                Rng& rng) const {
  require(trials >= 1, "nu_z_mc: need at least one trial");
  std::vector<std::uint64_t> elements(codec_.q());
  double acc = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    for (auto& e : elements) e = nu.sample(rng);
    acc += g_.value(codec_.pack(elements));
  }
  return acc / static_cast<double>(trials);
}

double MessageAnalysis::lemma41_fourier_difference(const NuZ& nu) const {
  require(nu.domain().ell() == codec_.domain().ell(),
          "lemma41_fourier_difference: domain mismatch");
  const unsigned q = codec_.q();
  const unsigned ell = codec_.domain().ell();
  const double eps = nu.eps();
  const std::uint64_t s_mask_all = codec_.s_bits_mask();
  const std::uint64_t side = codec_.domain().side_size();

  // Enumerate all x assignments: each of the q samples gets a cube point.
  // For each, restrict G to the s-bits and take Fourier coefficients over
  // the q-dimensional cube of sign vectors.
  double total = 0.0;
  std::vector<std::uint64_t> xs(q);
  const std::uint64_t num_x = [&] {
    std::uint64_t v = 1;
    for (unsigned j = 0; j < q; ++j) v *= side;
    return v;
  }();
  for (std::uint64_t xi = 0; xi < num_x; ++xi) {
    std::uint64_t rest = xi;
    std::uint64_t fixed_values = 0;
    for (unsigned j = 0; j < q; ++j) {
      xs[j] = rest % side;
      rest /= side;
      fixed_values |= xs[j] << (j * (ell + 1));
    }
    const BooleanCubeFunction gx =
        g_.restrict_vars(~s_mask_all & (codec_.num_tuples() - 1),
                         fixed_values);
    const auto& coeffs = gx.fourier();
    for (std::uint64_t s_set = 1; s_set < coeffs.size(); ++s_set) {
      double term = std::pow(eps, std::popcount(s_set)) * coeffs[s_set];
      for (unsigned j = 0; j < q; ++j) {
        if ((s_set >> j) & 1ULL) {
          term *= static_cast<double>(nu.z().sign(xs[j]));
        }
      }
      total += term;
    }
  }
  const auto n = static_cast<double>(codec_.domain().universe_size());
  const double scale = std::pow(2.0, static_cast<double>(q)) /
                       std::pow(n, static_cast<double>(q));
  return scale * total;
}

ZMoments MessageAnalysis::z_moments_exact(double eps) const {
  const unsigned ell = codec_.domain().ell();
  require(ell <= 4, "z_moments_exact: 2^(2^ell) enumerations; ell <= 4");
  const std::uint64_t side = codec_.domain().side_size();
  const std::uint64_t num_z = 1ULL << side;
  const double mu_g = mu();
  ZMoments out;
  for (std::uint64_t zbits = 0; zbits < num_z; ++zbits) {
    PerturbationVector z(ell);
    for (std::uint64_t x = 0; x < side; ++x) {
      z.set_sign(x, ((zbits >> x) & 1ULL) ? -1 : +1);
    }
    const NuZ nu(codec_.domain(), z, eps);
    const double d = nu_z_exact(nu) - mu_g;
    out.mean_diff += d;
    out.mean_abs_diff += std::fabs(d);
    out.second_moment += d * d;
  }
  const auto inv = 1.0 / static_cast<double>(num_z);
  out.mean_diff *= inv;
  out.mean_abs_diff *= inv;
  out.second_moment *= inv;
  return out;
}

ZMoments MessageAnalysis::z_moments_mc(double eps, std::size_t z_trials,
                                       Rng& rng) const {
  require(z_trials >= 1, "z_moments_mc: need at least one z trial");
  const double mu_g = mu();
  ZMoments out;
  for (std::size_t t = 0; t < z_trials; ++t) {
    const auto z = PerturbationVector::random(codec_.domain().ell(), rng);
    const NuZ nu(codec_.domain(), z, eps);
    const double d = nu_z_exact(nu) - mu_g;
    out.mean_diff += d;
    out.mean_abs_diff += std::fabs(d);
    out.second_moment += d * d;
  }
  const auto inv = 1.0 / static_cast<double>(z_trials);
  out.mean_diff *= inv;
  out.mean_abs_diff *= inv;
  out.second_moment *= inv;
  return out;
}

}  // namespace duti
