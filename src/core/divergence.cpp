#include "core/divergence.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace duti {

double kl_bernoulli(double alpha, double beta) {
  require(alpha >= 0.0 && alpha <= 1.0, "kl_bernoulli: alpha in [0,1]");
  require(beta >= 0.0 && beta <= 1.0, "kl_bernoulli: beta in [0,1]");
  const double inf = std::numeric_limits<double>::infinity();
  double acc = 0.0;
  if (alpha > 0.0) {
    if (beta == 0.0) return inf;
    acc += alpha * std::log2(alpha / beta);
  }
  if (alpha < 1.0) {
    if (beta == 1.0) return inf;
    acc += (1.0 - alpha) * std::log2((1.0 - alpha) / (1.0 - beta));
  }
  return acc;
}

double chi2_bernoulli_bound(double alpha, double beta) {
  require(alpha >= 0.0 && alpha <= 1.0, "chi2_bernoulli_bound: alpha in [0,1]");
  require(beta > 0.0 && beta < 1.0, "chi2_bernoulli_bound: beta in (0,1)");
  const double d = alpha - beta;
  return d * d / (beta * (1.0 - beta) * std::log(2.0));
}

double kl_pmf(const std::vector<double>& p, const std::vector<double>& q) {
  require(p.size() == q.size(), "kl_pmf: size mismatch");
  const double inf = std::numeric_limits<double>::infinity();
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0.0) continue;
    if (q[i] == 0.0) return inf;
    acc += p[i] * std::log2(p[i] / q[i]);
  }
  return acc;
}

double required_total_divergence(double delta) {
  require(delta > 0.0 && delta < 1.0, "required_total_divergence: delta in (0,1)");
  return 0.1 * std::log2(1.0 / delta);
}

double per_player_divergence_cap(double n, double q, double eps) {
  require(n >= 2.0 && q >= 1.0, "per_player_divergence_cap: bad n or q");
  require(eps > 0.0 && eps <= 1.0, "per_player_divergence_cap: eps in (0,1]");
  const double e2 = eps * eps;
  return (20.0 * q * q * e2 * e2 / n + q * e2 / n) / std::log(2.0);
}

double theorem61_q_lower_bound(double n, double k, double eps, double delta) {
  require(k >= 1.0, "theorem61_q_lower_bound: k >= 1");
  const double target = required_total_divergence(delta) / k * std::log(2.0);
  // Solve 20 q^2 eps^4 / n + q eps^2 / n = target for the positive root.
  const double e2 = eps * eps;
  const double a = 20.0 * e2 * e2 / n;
  const double b = e2 / n;
  const double disc = b * b + 4.0 * a * target;
  return (-b + std::sqrt(disc)) / (2.0 * a);
}

}  // namespace duti
