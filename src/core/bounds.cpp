#include "core/bounds.hpp"

#include <cmath>

#include "util/error.hpp"

namespace duti::bounds {

namespace {
void check_common(double n, double q, double eps) {
  duti::require(n >= 2.0, "bounds: n must be >= 2");
  duti::require(q >= 1.0, "bounds: q must be >= 1");
  duti::require(eps > 0.0 && eps <= 1.0, "bounds: eps in (0,1]");
}
}  // namespace

bool lemma51_valid(double n, double q, double eps) {
  check_common(n, q, eps);
  return q <= std::sqrt(n) / (4.0 * eps * eps);
}

double lemma51_bound(double n, double q, double eps, double var_g) {
  check_common(n, q, eps);
  duti::require(var_g >= 0.0, "lemma51_bound: var must be >= 0");
  return 4.0 * q * eps * eps / std::sqrt(n) * std::sqrt(var_g);
}

bool lemma42_valid(double n, double q, double eps) {
  check_common(n, q, eps);
  return q <= std::sqrt(n) / (20.0 * eps * eps);
}

double lemma42_bound(double n, double q, double eps, double var_g) {
  check_common(n, q, eps);
  duti::require(var_g >= 0.0, "lemma42_bound: var must be >= 0");
  const double e2 = eps * eps;
  return (20.0 * q * q * e2 * e2 / n + q * e2 / n) * var_g;
}

bool lemma43_valid(double n, double q, double eps, unsigned m) {
  check_common(n, q, eps);
  duti::require(m >= 1, "lemma43_valid: m >= 1");
  const double md = static_cast<double>(m);
  const double base = 40.0 * md * md * eps * eps;
  const double cap1 = std::sqrt(n) / base;
  const double cap2 = std::sqrt(n) / std::pow(base, md + 1.0);
  return q <= std::min(cap1, cap2);
}

double lemma43_bound(double n, double q, double eps, unsigned m,
                     double var_g) {
  check_common(n, q, eps);
  duti::require(m >= 1, "lemma43_bound: m >= 1");
  duti::require(var_g >= 0.0, "lemma43_bound: var must be >= 0");
  const double md = static_cast<double>(m);
  const double ratio = q / std::sqrt(n);
  const double exponent = (2.0 * md + 1.0) / (2.0 * md + 2.0);
  return (ratio + std::pow(ratio, 1.0 / (2.0 * md + 2.0))) * 40.0 * md * md *
         eps * eps * std::pow(var_g, exponent);
}

bool lemma44_valid(double n, double q, double eps, unsigned m) {
  check_common(n, q, eps);
  duti::require(m >= 1, "lemma44_valid: m >= 1");
  const double md = static_cast<double>(m);
  const double base = (40.0 * md) * (40.0 * md) * eps * eps;
  const double cap1 = std::sqrt(n) / std::pow(base, md + 1.0);
  const double cap2 = std::sqrt(n) / base;
  return q <= std::min(cap1, cap2);
}

double lemma44_bound(double n, double q, double eps, unsigned m, double var_g,
                     double big_c) {
  check_common(n, q, eps);
  duti::require(m >= 1, "lemma44_bound: m >= 1");
  duti::require(var_g >= 0.0, "lemma44_bound: var must be >= 0");
  duti::require(big_c > 0.0, "lemma44_bound: C must be positive");
  const double md = static_cast<double>(m);
  const double e2 = eps * eps;
  const double ratio = q / std::sqrt(n);
  const double first = 2.0 * e2 * q / n * var_g;
  const double second = big_c *
                        (ratio + std::pow(ratio, 1.0 / (md + 1.0))) * md * md *
                        e2 * std::pow(var_g, 2.0 - 1.0 / (md + 1.0));
  return first + second;
}

}  // namespace duti::bounds
