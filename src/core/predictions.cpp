#include "core/predictions.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace duti::predict {

namespace {
void check(double n, double eps) {
  duti::require(n >= 2.0, "predict: n must be >= 2");
  duti::require(eps > 0.0 && eps <= 1.0, "predict: eps in (0,1]");
}
}  // namespace

double centralized_q(double n, double eps, double c) {
  check(n, eps);
  return c * std::sqrt(n) / (eps * eps);
}

double thm11_any_rule_q(double n, double k, double eps, double c) {
  check(n, eps);
  duti::require(k >= 1.0, "thm11_any_rule_q: k >= 1");
  return c * std::min(std::sqrt(n / k), n / k) / (eps * eps);
}

double thm64_multibit_q(double n, double k, double eps, unsigned r,
                        double c) {
  check(n, eps);
  duti::require(k >= 1.0, "thm64_multibit_q: k >= 1");
  const double keff = k * std::ldexp(1.0, static_cast<int>(r));
  return c * std::min(std::sqrt(n / keff), n / keff) / (eps * eps);
}

double thm12_and_rule_q(double n, double k, double eps, double c) {
  check(n, eps);
  duti::require(k >= 2.0, "thm12_and_rule_q: k >= 2 (log k must be positive)");
  const double lg = std::log2(k);
  return c * std::sqrt(n) / (lg * lg * eps * eps);
}

double thm13_threshold_q(double n, double k, double eps, double t, double c) {
  check(n, eps);
  duti::require(k >= 1.0 && t >= 1.0, "thm13_threshold_q: k, T >= 1");
  const double lg = std::max(1.0, std::log2(k / eps));
  return c * std::sqrt(n) / (t * lg * lg * eps * eps);
}

bool thm13_threshold_applies(double n, double k, double eps, double t,
                             double c) {
  check(n, eps);
  if (k > std::sqrt(n)) return false;
  const double lg = std::max(1.0, std::log2(k / eps));
  return t < c / (eps * eps * lg * lg);
}

double thm14_learning_k(double n, double q, double c) {
  duti::require(n >= 2.0 && q >= 1.0, "thm14_learning_k: bad n or q");
  return c * n * n / (q * q);
}

double fmo_and_tester_q(double n, double k, double eps, double c,
                        double exponent_c) {
  check(n, eps);
  duti::require(k >= 1.0, "fmo_and_tester_q: k >= 1");
  return c * std::sqrt(n) /
         (std::pow(k, exponent_c * eps * eps) * eps * eps);
}

double fmo_threshold_tester_q(double n, double k, double eps, double c) {
  check(n, eps);
  duti::require(k >= 1.0, "fmo_threshold_tester_q: k >= 1");
  return c * std::sqrt(n / k) / (eps * eps);
}

double asymmetric_tau(double n, double eps, const std::vector<double>& rates,
                      double c) {
  check(n, eps);
  duti::require(!rates.empty(), "asymmetric_tau: empty rate vector");
  double norm2 = 0.0;
  for (double t : rates) {
    duti::require(t > 0.0, "asymmetric_tau: rates must be positive");
    norm2 += t * t;
  }
  return c * std::sqrt(n) / (eps * eps * std::sqrt(norm2));
}

double act_single_sample_k(double n, double eps, unsigned r, double c) {
  check(n, eps);
  return c * n / (std::ldexp(1.0, static_cast<int>(r) / 2) * eps * eps);
}

}  // namespace duti::predict
