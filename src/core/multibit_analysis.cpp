#include "core/multibit_analysis.hpp"

#include <cmath>

#include "core/claim31.hpp"
#include "core/divergence.hpp"
#include "util/error.hpp"

namespace duti {

MultibitMessageAnalysis::MultibitMessageAnalysis(
    SampleTupleCodec codec, unsigned r,
    std::function<std::uint32_t(std::uint64_t)> message)
    : codec_(codec), r_(r), message_(std::move(message)) {
  require(r_ >= 1 && r_ <= 20, "MultibitMessageAnalysis: r in [1,20]");
  require(static_cast<bool>(message_),
          "MultibitMessageAnalysis: null message function");
}

const std::vector<double>& MultibitMessageAnalysis::uniform_pushforward()
    const {
  if (uniform_push_.empty()) {
    uniform_push_.assign(num_symbols(), 0.0);
    const double per_tuple =
        1.0 / static_cast<double>(codec_.num_tuples());
    for (std::uint64_t t = 0; t < codec_.num_tuples(); ++t) {
      const std::uint32_t symbol = message_(t);
      require(symbol < num_symbols(),
              "MultibitMessageAnalysis: message symbol out of range");
      uniform_push_[symbol] += per_tuple;
    }
  }
  return uniform_push_;
}

std::vector<double> MultibitMessageAnalysis::nu_z_pushforward(
    const NuZ& nu) const {
  require(nu.domain().ell() == codec_.domain().ell(),
          "nu_z_pushforward: domain mismatch");
  std::vector<double> push(num_symbols(), 0.0);
  for (std::uint64_t t = 0; t < codec_.num_tuples(); ++t) {
    push[message_(t)] += nu_zq_pmf_direct(codec_, nu, t);
  }
  return push;
}

double MultibitMessageAnalysis::divergence_given_z(const NuZ& nu) const {
  return kl_pmf(nu_z_pushforward(nu), uniform_pushforward());
}

double MultibitMessageAnalysis::expected_divergence_exact(double eps) const {
  const unsigned ell = codec_.domain().ell();
  require(ell <= 4, "expected_divergence_exact: ell <= 4");
  const std::uint64_t side = codec_.domain().side_size();
  const std::uint64_t num_z = 1ULL << side;
  double acc = 0.0;
  for (std::uint64_t zbits = 0; zbits < num_z; ++zbits) {
    PerturbationVector z(ell);
    for (std::uint64_t x = 0; x < side; ++x) {
      z.set_sign(x, ((zbits >> x) & 1ULL) ? -1 : +1);
    }
    acc += divergence_given_z(NuZ(codec_.domain(), z, eps));
  }
  return acc / static_cast<double>(num_z);
}

double MultibitMessageAnalysis::expected_divergence_mc(double eps,
                                                       std::size_t z_trials,
                                                       Rng& rng) const {
  require(z_trials >= 1, "expected_divergence_mc: need trials");
  double acc = 0.0;
  for (std::size_t t = 0; t < z_trials; ++t) {
    const auto z = PerturbationVector::random(codec_.domain().ell(), rng);
    acc += divergence_given_z(NuZ(codec_.domain(), z, eps));
  }
  return acc / static_cast<double>(z_trials);
}

double MultibitMessageAnalysis::full_tuple_divergence_exact(
    const SampleTupleCodec& codec, double eps) {
  const unsigned ell = codec.domain().ell();
  require(ell <= 4, "full_tuple_divergence_exact: ell <= 4");
  const std::uint64_t side = codec.domain().side_size();
  const std::uint64_t num_z = 1ULL << side;
  const double uniform_pmf =
      1.0 / static_cast<double>(codec.num_tuples());
  double acc = 0.0;
  for (std::uint64_t zbits = 0; zbits < num_z; ++zbits) {
    PerturbationVector z(ell);
    for (std::uint64_t x = 0; x < side; ++x) {
      z.set_sign(x, ((zbits >> x) & 1ULL) ? -1 : +1);
    }
    const NuZ nu(codec.domain(), z, eps);
    double kl = 0.0;
    for (std::uint64_t t = 0; t < codec.num_tuples(); ++t) {
      const double p = nu_zq_pmf_direct(codec, nu, t);
      if (p > 0.0) kl += p * std::log2(p / uniform_pmf);
    }
    acc += kl;
  }
  return acc / static_cast<double>(num_z);
}

std::function<std::uint32_t(std::uint64_t)> first_sample_prefix_message(
    const SampleTupleCodec& codec, unsigned r) {
  require(r <= codec.domain().ell() + 1,
          "first_sample_prefix_message: r exceeds element width");
  return [codec, r](std::uint64_t packed) {
    return static_cast<std::uint32_t>(codec.element(packed, 0) &
                                      ((1ULL << r) - 1));
  };
}

}  // namespace duti
