// Codec between a tuple of q universe elements (each an (ell+1)-bit value
// of the CubeDomain encoding) and a single index into the domain of the
// player's message function G : {-1,1}^{(ell+1)q} -> {0,1}.
//
// Layout: sample j occupies bits [j*(ell+1), (j+1)*(ell+1)) of the packed
// index; within a sample, the low ell bits are x_j and the top bit is s_j.
// This matches the paper's "G(x, s)" notation with coordinates grouped per
// sample, and makes the restriction G_x(s) a restriction of the s-bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dist/cube_domain.hpp"
#include "util/error.hpp"

namespace duti {

class SampleTupleCodec {
 public:
  SampleTupleCodec(CubeDomain domain, unsigned q)
      : domain_(domain), q_(q), bits_per_(domain.ell() + 1) {
    require(q >= 1, "SampleTupleCodec: q must be >= 1");
    require(static_cast<std::uint64_t>(q) * bits_per_ <= 26,
            "SampleTupleCodec: (ell+1)*q must be <= 26 for dense functions");
  }

  [[nodiscard]] const CubeDomain& domain() const noexcept { return domain_; }
  [[nodiscard]] unsigned q() const noexcept { return q_; }
  [[nodiscard]] unsigned total_bits() const noexcept { return q_ * bits_per_; }
  [[nodiscard]] std::uint64_t num_tuples() const noexcept {
    return 1ULL << total_bits();
  }

  /// Pack q universe elements into one index.
  [[nodiscard]] std::uint64_t pack(
      std::span<const std::uint64_t> elements) const {
    require(elements.size() == q_, "pack: wrong tuple length");
    std::uint64_t idx = 0;
    for (unsigned j = 0; j < q_; ++j) {
      require(elements[j] < domain_.universe_size(),
              "pack: element out of range");
      idx |= elements[j] << (j * bits_per_);
    }
    return idx;
  }

  /// Element j of a packed tuple.
  [[nodiscard]] std::uint64_t element(std::uint64_t packed,
                                      unsigned j) const noexcept {
    return (packed >> (j * bits_per_)) & ((1ULL << bits_per_) - 1);
  }

  /// The cube point x_j of sample j.
  [[nodiscard]] std::uint64_t x_of(std::uint64_t packed,
                                   unsigned j) const noexcept {
    return domain_.x_of(element(packed, j));
  }

  /// The side s_j in {-1,+1} of sample j.
  [[nodiscard]] int s_of(std::uint64_t packed, unsigned j) const noexcept {
    return domain_.s_of(element(packed, j));
  }

  /// Mask (within the packed index) of all s-bits — one per sample.
  [[nodiscard]] std::uint64_t s_bits_mask() const noexcept {
    std::uint64_t mask = 0;
    for (unsigned j = 0; j < q_; ++j) {
      mask |= 1ULL << (j * bits_per_ + domain_.ell());
    }
    return mask;
  }

  /// Packed index with the same x-parts as `packed` and all s-bits cleared.
  [[nodiscard]] std::uint64_t x_part(std::uint64_t packed) const noexcept {
    return packed & ~s_bits_mask();
  }

  /// Unpack the x-parts into a vector of cube points (for evenly-covered
  /// checks).
  void unpack_x(std::uint64_t packed, std::vector<std::uint64_t>& out) const {
    out.resize(q_);
    for (unsigned j = 0; j < q_; ++j) out[j] = x_of(packed, j);
  }

 private:
  CubeDomain domain_;
  unsigned q_;
  unsigned bits_per_;
};

}  // namespace duti
