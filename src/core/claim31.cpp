#include "core/claim31.hpp"

#include <cmath>

namespace duti {

double nu_zq_pmf_direct(const SampleTupleCodec& codec, const NuZ& nu,
                        std::uint64_t packed) {
  require(codec.domain().ell() == nu.domain().ell(),
          "nu_zq_pmf_direct: domain mismatch");
  double p = 1.0;
  for (unsigned j = 0; j < codec.q(); ++j) {
    p *= nu.pmf(codec.element(packed, j));
  }
  return p;
}

double nu_zq_pmf_expansion(const SampleTupleCodec& codec, const NuZ& nu,
                           std::uint64_t packed) {
  require(codec.domain().ell() == nu.domain().ell(),
          "nu_zq_pmf_expansion: domain mismatch");
  const unsigned q = codec.q();
  const double eps = nu.eps();
  double total = 0.0;
  for (std::uint64_t s_set = 0; s_set < (1ULL << q); ++s_set) {
    // chi_S(s) = prod_{j in S} s_j, and the z-product over S.
    double term = std::pow(eps, std::popcount(s_set));
    for (unsigned j = 0; j < q; ++j) {
      if ((s_set >> j) & 1ULL) {
        term *= static_cast<double>(codec.s_of(packed, j));
        term *= static_cast<double>(nu.z().sign(codec.x_of(packed, j)));
      }
    }
    total += term;
  }
  const auto n = static_cast<double>(codec.domain().universe_size());
  return total / std::pow(n, static_cast<double>(q));
}

}  // namespace duti
