#include "chaos/shrink.hpp"

#include <utility>

namespace duti::chaos {

namespace {

/// Does `spec` still fail? Full pipeline, counted against the budget.
[[nodiscard]] std::vector<Violation> violations_of(const ScenarioSpec& spec,
                                                   const ChaosHooks& hooks,
                                                   std::size_t& tried) {
  ++tried;
  return check_scenario(spec, hooks).violations;
}

[[nodiscard]] bool has_window(FaultComponent::Kind k) noexcept {
  return k == FaultComponent::Kind::kOutage ||
         k == FaultComponent::Kind::kDrop ||
         k == FaultComponent::Kind::kCorrupt ||
         k == FaultComponent::Kind::kDelay;
}

}  // namespace

ShrinkResult shrink_failing(const ScenarioSpec& failing,
                            const ChaosHooks& hooks) {
  ShrinkResult result;
  result.minimal = failing;
  result.violations =
      violations_of(result.minimal, hooks, result.scenarios_tried);
  if (result.violations.empty()) {
    result.token = serialize_token(result.minimal);
    return result;  // not actually failing: nothing to shrink
  }

  // Pass 1: greedy component removal to one-minimality. Restart the scan
  // after every successful removal — removing component A can make
  // component B removable.
  bool removed = true;
  while (removed && result.minimal.components.size() > 1) {
    removed = false;
    for (std::size_t i = 0; i < result.minimal.components.size(); ++i) {
      ScenarioSpec candidate = result.minimal;
      candidate.components.erase(candidate.components.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      auto vs = violations_of(candidate, hooks, result.scenarios_tried);
      if (!vs.empty()) {
        result.minimal = std::move(candidate);
        result.violations = std::move(vs);
        removed = true;
        break;
      }
    }
  }

  // Pass 2: per-component simplification. Bisect fault windows (prefer
  // the earlier half — failures near round 0 are easier to read) and snap
  // crash rounds to 0.
  for (std::size_t i = 0; i < result.minimal.components.size(); ++i) {
    if (result.minimal.components[i].kind == FaultComponent::Kind::kCrash &&
        result.minimal.components[i].lo != 0) {
      ScenarioSpec candidate = result.minimal;
      candidate.components[i].lo = 0;
      auto vs = violations_of(candidate, hooks, result.scenarios_tried);
      if (!vs.empty()) {
        result.minimal = std::move(candidate);
        result.violations = std::move(vs);
      }
    }
    while (has_window(result.minimal.components[i].kind) &&
           result.minimal.components[i].len > 1) {
      const FaultComponent& c = result.minimal.components[i];
      const std::uint32_t half = c.len / 2;
      ScenarioSpec first = result.minimal;   // [lo, lo+half)
      first.components[i].len = half;
      ScenarioSpec second = result.minimal;  // [lo+len-half, lo+len)
      second.components[i].lo = c.lo + c.len - half;
      second.components[i].len = half;
      auto vs = violations_of(first, hooks, result.scenarios_tried);
      if (!vs.empty()) {
        result.minimal = std::move(first);
        result.violations = std::move(vs);
        continue;
      }
      vs = violations_of(second, hooks, result.scenarios_tried);
      if (!vs.empty()) {
        result.minimal = std::move(second);
        result.violations = std::move(vs);
        continue;
      }
      break;  // neither half alone reproduces: the window is minimal
    }
  }

  result.token = serialize_token(result.minimal);
  return result;
}

}  // namespace duti::chaos
