// Invariant oracles: what must hold after ANY chaos run, and what must
// additionally hold when the fault schedule is within the stack's provable
// tolerance.
//
// The tolerance predicate is deliberately conservative — it admits only
// schedules for which the reliable transport's recovery is a theorem, not
// a likelihood: deterministic components only (round-0 crashes, outage
// windows, Byzantine votes), each outage window no longer than the
// transport's first ACK timeout (so it can kill at most one of a frame's
// attempts), and at most `max_retries` windows across both directions of
// any link pair (so at least one of the max_retries+1 attempts survives
// end to end). Within tolerance, the healed convergecast's delivery set is
// computed analytically (`predict`), giving the oracles an exact expected
// verdict; outside it, only the unconditional invariants (conservation,
// accounting, replay determinism) are checked.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/schedule.hpp"
#include "sim/reliable.hpp"
#include "testers/robust_rules.hpp"

namespace duti::chaos {

/// Everything one scenario execution produced, plus a content fingerprint
/// over all of it (the replay-determinism oracle compares fingerprints).
struct RunResult {
  RefereeOutcome outcome = RefereeOutcome::kAbortTimeout;
  std::uint64_t root_sum = 0;
  std::uint32_t values_reached = 0;
  std::uint32_t values_lost = 0;
  std::uint32_t reparent_events = 0;
  NetworkStats net;
  ReliableStats transport;

  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// The analytic model of the faulted run (exact within tolerance).
struct Prediction {
  bool within_tolerance = false;
  bool crash_free = true;  // no kCrash components at all
  bool byz_free = true;    // no kByzantine components at all
  /// delivers[v]: node v's value reaches the root through the healed
  /// forwarding chain (root itself included). Only meaningful within
  /// tolerance.
  std::vector<std::uint8_t> delivers;
  std::uint32_t predicted_reached = 0;
  std::uint32_t predicted_lost = 0;  // alive nodes whose route is severed
  std::uint64_t predicted_rejects = 0;
  RefereeOutcome predicted_outcome = RefereeOutcome::kAbortTimeout;
};

/// The referee rule every chaos scenario is judged by: quorum-calibrated
/// threshold over the votes that reached the root.
[[nodiscard]] QuorumThresholdRule referee_rule_of(const ScenarioSpec& spec);

/// Analytically predict the faulted run under `cfg` (the transport config
/// the runner will use). Exact when within_tolerance.
[[nodiscard]] Prediction predict(const ScenarioSpec& spec,
                                 const ReliableConfig& cfg);

/// One oracle violation (oracle name + human-readable detail).
struct Violation {
  std::string oracle;
  std::string detail;
};

/// Inputs every oracle sees. `replay` is the same spec re-executed from
/// its token; `baseline` is the fault-free run of the same scenario.
struct OracleContext {
  const ScenarioSpec& spec;
  const RunResult& run;
  const RunResult& replay;
  const RunResult& baseline;
  const Prediction& predicted;
};

/// A registered invariant: checks the context, appends violations.
struct OracleEntry {
  const char* name;
  void (*check)(const OracleContext&, std::vector<Violation>&);
};

/// The oracle registry, in report order:
///   net-conservation      sent == delivered + dropped + outage + halted
///   transport-accounting  payload+overhead == bits; frames == messages
///   value-accounting      reached >= 1, total == k, lost <= k
///   replay-determinism    token-replayed run is bit-identical
///   no-spurious-abort     within tolerance: no abort when the predicted
///                         survivor count meets the quorum
///   predicted-verdict     within tolerance: outcome == analytic outcome
///   baseline-agreement    within tolerance, crash/byz-free: outcome ==
///                         fault-free baseline outcome
const std::vector<OracleEntry>& oracle_registry();

/// Run every registered oracle; returns all violations (empty == pass).
[[nodiscard]] std::vector<Violation> check_oracles(const OracleContext& ctx);

}  // namespace duti::chaos
