// Schedule shrinking: reduce a failing chaos schedule to a minimal
// reproducer while preserving the failure.
//
// Two passes to fixpoint, delta-debugging style but exploiting the
// schedule structure instead of treating it as an opaque list:
//   1. greedy component removal — drop each fault component in turn and
//      keep the removal whenever the shrunk schedule still violates an
//      oracle (one-minimality: no single component can be removed);
//   2. window bisection — for windowed components (outages, bursts),
//      repeatedly try each half of the window, preferring the earlier
//      half, and try snapping crash rounds to 0.
// Every candidate is judged by the full oracle pipeline (run + token
// replay + baseline + prediction), so the minimized token reproduces the
// violation through exactly the path a user will take with --replay.
#pragma once

#include <cstddef>

#include "chaos/engine.hpp"

namespace duti::chaos {

struct ShrinkResult {
  ScenarioSpec minimal;
  std::string token;                  // serialize_token(minimal)
  std::vector<Violation> violations;  // what the minimal schedule violates
  std::size_t scenarios_tried = 0;    // shrink cost, for the bench summary
};

/// Minimize `failing` (which must currently violate at least one oracle
/// under `hooks`; if it does not, it is returned unchanged with empty
/// violations).
[[nodiscard]] ShrinkResult shrink_failing(const ScenarioSpec& failing,
                                          const ChaosHooks& hooks = {});

}  // namespace duti::chaos
