#include "chaos/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "util/error.hpp"
#include "util/fnv.hpp"

namespace duti::chaos {

std::uint64_t RunResult::fingerprint() const {
  Fnv64 h;
  h.u64(static_cast<std::uint64_t>(outcome));
  h.u64(root_sum);
  h.u64(values_reached);
  h.u64(values_lost);
  h.u64(reparent_events);
  h.u64(net.rounds_executed);
  h.u64(net.messages_sent);
  h.u64(net.bits_sent);
  h.u64(net.messages_delivered);
  h.u64(net.messages_dropped);
  h.u64(net.messages_corrupted);
  h.u64(net.messages_delayed);
  h.u64(net.messages_lost_to_outage);
  h.u64(net.messages_lost_to_halted);
  h.u64(net.nodes_crashed);
  h.u64(transport.data_sent);
  h.u64(transport.retransmissions);
  h.u64(transport.acks_sent);
  h.u64(transport.duplicates);
  h.u64(transport.delivered);
  h.u64(transport.failed);
  h.u64(transport.payload_bits);
  h.u64(transport.overhead_bits);
  return h.value();
}

QuorumThresholdRule referee_rule_of(const ScenarioSpec& spec) {
  QuorumThresholdRule rule;
  rule.k = spec.k();
  rule.p_reject_uniform = static_cast<double>(spec.vote_pct) / 100.0;
  rule.quorum_fraction = 0.5;
  rule.z = 1.0;
  return rule;
}

Prediction predict(const ScenarioSpec& spec, const ReliableConfig& cfg) {
  Prediction p;
  const std::uint32_t k = spec.k();
  std::vector<std::uint8_t> crashed(k, 0);
  std::uint32_t crash_count = 0;
  bool tolerant = true;
  // Outage windows per unordered link pair: the transport's max_retries+1
  // attempts are spaced >= timeout(0) rounds apart, so one window of
  // length <= timeout(0) kills at most one attempt (forward window) or one
  // ACK (reverse window). <= max_retries windows on the pair leave at
  // least one attempt whose DATA and ACK both clear every window.
  std::map<std::pair<std::uint32_t, std::uint32_t>, unsigned> pair_windows;
  for (const auto& c : spec.components) {
    switch (c.kind) {
      case FaultComponent::Kind::kCrash:
        p.crash_free = false;
        if (c.lo != 0 || c.node == 0) {
          tolerant = false;  // mid-protocol or referee death: no theorem
        } else if (!crashed[c.node]) {
          crashed[c.node] = 1;
          ++crash_count;
        }
        break;
      case FaultComponent::Kind::kByzantine:
        p.byz_free = false;  // vote-level: prediction absorbs it exactly
        break;
      case FaultComponent::Kind::kOutage: {
        if (c.len > cfg.timeout(0)) tolerant = false;
        ++pair_windows[{std::min(c.from, c.to), std::max(c.from, c.to)}];
        break;
      }
      default:
        tolerant = false;  // probabilistic faults: only likely, not proven
        break;
    }
  }
  for (const auto& [pair, windows] : pair_windows) {
    (void)pair;
    if (windows > cfg.max_retries) tolerant = false;
  }
  // Deep re-parent cascades (several crashed candidates in a row) stretch
  // the per-hop time budget; stay conservative and only certify schedules
  // whose healing is shallow.
  if (crash_count > 2) tolerant = false;
  p.within_tolerance = tolerant;
  if (!tolerant) return p;

  // Healed delivery set: a node's value reaches the root iff the node is
  // alive and its effective-parent chain is alive all the way up. The
  // effective parent e(v) is the first ALIVE entry of the exact candidate
  // order convergecast_sum_reliable tries: the tree parent first, then the
  // remaining strictly-closer neighbours by (depth, id).
  Network net = build_network(spec);
  const SpanningTree tree = bfs_spanning_tree(net, 0);
  p.delivers.assign(k, 0);
  std::vector<NodeId> by_depth(k);
  for (std::uint32_t v = 0; v < k; ++v) by_depth[v] = v;
  std::sort(by_depth.begin(), by_depth.end(), [&](NodeId a, NodeId b) {
    return tree.depth[a] != tree.depth[b] ? tree.depth[a] < tree.depth[b]
                                          : a < b;
  });
  p.delivers[tree.root] = 1;  // referee never crashes within tolerance
  for (const NodeId v : by_depth) {
    if (v == tree.root || crashed[v]) continue;
    std::vector<NodeId> candidates{tree.parent[v]};
    std::vector<NodeId> closer;
    for (const NodeId u : net.neighbors(v)) {
      if (tree.depth[u] < tree.depth[v] && u != tree.parent[v]) {
        closer.push_back(u);
      }
    }
    std::sort(closer.begin(), closer.end(), [&](NodeId a, NodeId b) {
      return tree.depth[a] != tree.depth[b] ? tree.depth[a] < tree.depth[b]
                                            : a < b;
    });
    candidates.insert(candidates.end(), closer.begin(), closer.end());
    for (const NodeId e : candidates) {
      if (!crashed[e]) {
        p.delivers[v] = p.delivers[e];  // e is shallower: already decided
        break;
      }
    }
  }

  const std::vector<std::uint64_t> votes = tampered_votes_of(spec);
  for (std::uint32_t v = 0; v < k; ++v) {
    if (p.delivers[v]) {
      ++p.predicted_reached;
      p.predicted_rejects += votes[v];
    } else if (!crashed[v]) {
      ++p.predicted_lost;
    }
  }
  p.predicted_outcome =
      referee_rule_of(spec).decide(p.predicted_rejects, p.predicted_reached);
  return p;
}

namespace {

void oracle_net_conservation(const OracleContext& ctx,
                             std::vector<Violation>& out) {
  auto check = [&](const char* which, const NetworkStats& s) {
    if (!s.conserves_messages()) {
      out.push_back(
          {"net-conservation",
           std::string(which) + ": sent=" + std::to_string(s.messages_sent) +
               " != delivered=" + std::to_string(s.messages_delivered) +
               " + lost=" + std::to_string(s.messages_lost())});
    }
  };
  check("run", ctx.run.net);
  check("baseline", ctx.baseline.net);
}

void oracle_transport_accounting(const OracleContext& ctx,
                                 std::vector<Violation>& out) {
  const auto& t = ctx.run.transport;
  const auto& n = ctx.run.net;
  if (t.payload_bits + t.overhead_bits != n.bits_sent) {
    out.push_back({"transport-accounting",
                   "payload+overhead=" +
                       std::to_string(t.payload_bits + t.overhead_bits) +
                       " != bits_sent=" + std::to_string(n.bits_sent)});
  }
  const std::uint64_t frames = t.data_sent + t.retransmissions + t.acks_sent;
  if (frames != n.messages_sent) {
    out.push_back({"transport-accounting",
                   "frames=" + std::to_string(frames) + " != messages_sent=" +
                       std::to_string(n.messages_sent)});
  }
}

void oracle_value_accounting(const OracleContext& ctx,
                             std::vector<Violation>& out) {
  const std::uint32_t k = ctx.spec.k();
  if (ctx.run.values_reached < 1 || ctx.run.values_lost > k ||
      ctx.run.values_reached > 2 * k) {
    out.push_back({"value-accounting",
                   "reached=" + std::to_string(ctx.run.values_reached) +
                       " lost=" + std::to_string(ctx.run.values_lost) +
                       " k=" + std::to_string(k)});
  }
}

void oracle_replay_determinism(const OracleContext& ctx,
                               std::vector<Violation>& out) {
  if (ctx.run.fingerprint() != ctx.replay.fingerprint()) {
    out.push_back({"replay-determinism",
                   "token-replayed run diverged: fp=" +
                       std::to_string(ctx.run.fingerprint()) +
                       " vs replay fp=" +
                       std::to_string(ctx.replay.fingerprint())});
  }
}

void oracle_no_spurious_abort(const OracleContext& ctx,
                              std::vector<Violation>& out) {
  if (!ctx.predicted.within_tolerance) return;
  const QuorumThresholdRule rule = referee_rule_of(ctx.spec);
  const auto quorum = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(
             rule.quorum_fraction * static_cast<double>(rule.k))));
  const bool satisfiable = ctx.predicted.predicted_reached >= quorum;
  const bool aborted = ctx.run.outcome == RefereeOutcome::kAbortQuorum ||
                       ctx.run.outcome == RefereeOutcome::kAbortTimeout;
  if (satisfiable && aborted) {
    out.push_back({"no-spurious-abort",
                   std::string("referee ") + to_string(ctx.run.outcome) +
                       " but " +
                       std::to_string(ctx.predicted.predicted_reached) +
                       " survivors were reachable (quorum=" +
                       std::to_string(quorum) + ")"});
  }
}

void oracle_predicted_verdict(const OracleContext& ctx,
                              std::vector<Violation>& out) {
  if (!ctx.predicted.within_tolerance) return;
  const auto& p = ctx.predicted;
  const auto& r = ctx.run;
  if (r.outcome != p.predicted_outcome ||
      r.values_reached != p.predicted_reached ||
      r.values_lost != p.predicted_lost ||
      r.root_sum != p.predicted_rejects) {
    out.push_back(
        {"predicted-verdict",
         std::string("got ") + to_string(r.outcome) +
             " reached=" + std::to_string(r.values_reached) +
             " lost=" + std::to_string(r.values_lost) +
             " sum=" + std::to_string(r.root_sum) + "; predicted " +
             to_string(p.predicted_outcome) +
             " reached=" + std::to_string(p.predicted_reached) +
             " lost=" + std::to_string(p.predicted_lost) +
             " sum=" + std::to_string(p.predicted_rejects)});
  }
}

void oracle_baseline_agreement(const OracleContext& ctx,
                               std::vector<Violation>& out) {
  if (!ctx.predicted.within_tolerance || !ctx.predicted.crash_free ||
      !ctx.predicted.byz_free) {
    return;
  }
  if (ctx.run.outcome != ctx.baseline.outcome) {
    out.push_back({"baseline-agreement",
                   std::string("faulted run ") + to_string(ctx.run.outcome) +
                       " != fault-free baseline " +
                       to_string(ctx.baseline.outcome) +
                       " though the schedule is within tolerance"});
  }
}

}  // namespace

const std::vector<OracleEntry>& oracle_registry() {
  static const std::vector<OracleEntry> kRegistry = {
      {"net-conservation", oracle_net_conservation},
      {"transport-accounting", oracle_transport_accounting},
      {"value-accounting", oracle_value_accounting},
      {"replay-determinism", oracle_replay_determinism},
      {"no-spurious-abort", oracle_no_spurious_abort},
      {"predicted-verdict", oracle_predicted_verdict},
      {"baseline-agreement", oracle_baseline_agreement},
  };
  return kRegistry;
}

std::vector<Violation> check_oracles(const OracleContext& ctx) {
  std::vector<Violation> out;
  for (const auto& entry : oracle_registry()) entry.check(ctx, out);
  return out;
}

}  // namespace duti::chaos
