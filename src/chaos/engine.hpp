// The chaos engine: execute one scenario deterministically, judge it
// against the oracle registry, and sweep seeded campaigns in parallel with
// a bit-identical summary at any DUTI_THREADS.
//
// Every scenario runs the same protocol: the scenario's (possibly
// Byzantine-tampered) vote bits flow to the referee at node 0 over the
// reliable self-healing convergecast, under the spec's fault schedule, and
// the quorum-threshold referee rules on whatever arrived. A RunResult
// captures the verdict plus the full network/transport accounting; its
// fingerprint is the unit of replay comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/oracles.hpp"
#include "chaos/schedule.hpp"
#include "util/thread_pool.hpp"

namespace duti::chaos {

/// Test-only fault injection into the engine itself (the chaos meta-test:
/// the oracles must catch a deliberately broken transport). The tolerance
/// predicate always uses the ADVERTISED transport config; a nonzero
/// `retry_deficit` silently shrinks the budget the transport actually
/// gets, exactly the off-by-one class of bug the engine exists to catch.
struct ChaosHooks {
  unsigned retry_deficit = 0;
};

/// The advertised transport config every chaos scenario runs with.
[[nodiscard]] ReliableConfig chaos_transport_config() noexcept;

/// Execute one scenario (no oracles): build, fault, run, judge.
[[nodiscard]] RunResult run_scenario(const ScenarioSpec& spec,
                                     const ChaosHooks& hooks = {});

/// One scenario judged by the full oracle registry. The token is always
/// filled in; `violations` is empty on a clean pass.
struct ScenarioReport {
  ScenarioSpec spec;
  std::string token;
  RunResult run;
  std::vector<Violation> violations;
};

/// Run + replay-from-token + fault-free baseline + prediction + oracles.
[[nodiscard]] ScenarioReport check_scenario(const ScenarioSpec& spec,
                                            const ChaosHooks& hooks = {});

struct CampaignConfig {
  std::uint64_t seed0 = 1;
  std::uint32_t num_seeds = 64;
  ChaosHooks hooks;
  bool shrink_failures = true;  // minimize each failing schedule
};

/// One failing seed, with its original and minimized reproducers.
struct CampaignFailure {
  std::uint64_t seed = 0;
  std::string token;               // the schedule as generated
  std::string shrunk_token;        // minimal failing reproducer
  std::size_t components = 0;      // fault components as generated
  std::size_t shrunk_components = 0;
  std::vector<Violation> violations;
};

struct CampaignSummary {
  std::uint64_t seed0 = 0;
  std::uint32_t num_seeds = 0;
  std::uint64_t total_components = 0;
  /// Count per RefereeOutcome (index = static_cast<int>(outcome)).
  std::uint64_t outcome_counts[4] = {0, 0, 0, 0};
  /// FNV-1a chain over (seed, run fingerprint) in seed order — identical
  /// across thread counts or the campaign itself violates determinism.
  std::uint64_t fingerprint = 0;
  std::vector<CampaignFailure> failures;

  [[nodiscard]] bool clean() const noexcept { return failures.empty(); }
};

/// Sweep seeds [seed0, seed0+num_seeds) on `pool`. Scenario checks run in
/// parallel (one seed per work item); the summary reduction and all
/// shrinking run sequentially in seed order, so the result is bit-identical
/// at any pool width.
[[nodiscard]] CampaignSummary run_campaign(const CampaignConfig& cfg,
                                           ThreadPool& pool);

/// Render a one-line human report of a violation set, ending with the
/// replay token ("rerun with --replay=<token>").
[[nodiscard]] std::string describe_failure(const std::string& token,
                                           const std::vector<Violation>& vs);

}  // namespace duti::chaos
