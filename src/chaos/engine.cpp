#include "chaos/engine.hpp"

#include <algorithm>
#include <utility>

#include "chaos/shrink.hpp"
#include "util/fnv.hpp"

namespace duti::chaos {

ReliableConfig chaos_transport_config() noexcept {
  return ReliableConfig{};  // ack_timeout 2, max_retries 4, backoff 2
}

RunResult run_scenario(const ScenarioSpec& spec, const ChaosHooks& hooks) {
  ReliableConfig cfg = chaos_transport_config();
  cfg.max_retries -= std::min(cfg.max_retries, hooks.retry_deficit);

  Network net = build_network(spec);
  apply_schedule(spec, net);
  const SpanningTree tree = bfs_spanning_tree(net, 0);
  const std::vector<std::uint64_t> votes = tampered_votes_of(spec);

  Rng rng = make_rng(spec.run_seed, 0xC4A05ULL);
  const ReliableConvergecastResult cc =
      convergecast_sum_reliable(net, tree, votes, 1, rng, cfg);

  RunResult r;
  r.root_sum = cc.root_sum;
  r.values_reached = cc.values_reached;
  r.values_lost = cc.values_lost;
  r.reparent_events = cc.reparent_events;
  r.net = cc.stats;
  r.transport = cc.transport;
  // The convergecast force-halts at its internal deadline and the root
  // then decides with whatever arrived — the deadline IS the protocol, so
  // "ran long" is not an abort; too few survivors is (kAbortQuorum).
  r.outcome = referee_rule_of(spec).decide(r.root_sum, r.values_reached);
  return r;
}

ScenarioReport check_scenario(const ScenarioSpec& spec,
                              const ChaosHooks& hooks) {
  ScenarioReport report;
  report.spec = spec;
  report.token = serialize_token(spec);
  report.run = run_scenario(spec, hooks);

  // Replay strictly from the serialized token: this exercises the full
  // parse path, so a token printed in a failure is guaranteed faithful.
  const RunResult replay = run_scenario(parse_token(report.token), hooks);

  ScenarioSpec baseline_spec = spec;
  baseline_spec.components.clear();
  const RunResult baseline = run_scenario(baseline_spec, hooks);

  const Prediction predicted = predict(spec, chaos_transport_config());
  const OracleContext ctx{spec, report.run, replay, baseline, predicted};
  report.violations = check_oracles(ctx);
  return report;
}

CampaignSummary run_campaign(const CampaignConfig& cfg, ThreadPool& pool) {
  CampaignSummary summary;
  summary.seed0 = cfg.seed0;
  summary.num_seeds = cfg.num_seeds;

  // Parallel phase: one independent scenario check per seed, written into
  // its own slot. Nothing is shared, so pool width cannot affect content.
  std::vector<ScenarioReport> reports(cfg.num_seeds);
  pool.parallel_for(cfg.num_seeds, 1,
                    [&](std::size_t begin, std::size_t end, unsigned) {
                      for (std::size_t i = begin; i < end; ++i) {
                        const ScenarioSpec spec =
                            generate_scenario(cfg.seed0 + i);
                        reports[i] = check_scenario(spec, cfg.hooks);
                      }
                    });

  // Sequential reduction in seed order: deterministic regardless of which
  // worker finished first. Shrinking (more scenario runs) also happens
  // here, never inside the parallel phase.
  Fnv64 chain;
  for (std::uint32_t i = 0; i < cfg.num_seeds; ++i) {
    ScenarioReport& rep = reports[i];
    summary.total_components += rep.spec.components.size();
    ++summary.outcome_counts[static_cast<int>(rep.run.outcome)];
    chain.u64(cfg.seed0 + i);
    chain.u64(rep.run.fingerprint());
    if (!rep.violations.empty()) {
      CampaignFailure f;
      f.seed = cfg.seed0 + i;
      f.token = rep.token;
      f.components = rep.spec.components.size();
      f.violations = rep.violations;
      if (cfg.shrink_failures) {
        const ShrinkResult shrunk = shrink_failing(rep.spec, cfg.hooks);
        f.shrunk_token = shrunk.token;
        f.shrunk_components = shrunk.minimal.components.size();
      } else {
        f.shrunk_token = rep.token;
        f.shrunk_components = f.components;
      }
      summary.failures.push_back(std::move(f));
    }
  }
  summary.fingerprint = chain.value();
  return summary;
}

std::string describe_failure(const std::string& token,
                             const std::vector<Violation>& vs) {
  std::string out = "chaos violation";
  for (const auto& v : vs) {
    out += "\n  [" + v.oracle + "] " + v.detail;
  }
  out += "\n  reproduce with --replay=" + token;
  return out;
}

}  // namespace duti::chaos
