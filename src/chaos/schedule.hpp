// Chaos schedules: seeded random fault scenarios over the sim stack.
//
// A ScenarioSpec is a complete, self-describing chaos experiment: a
// topology, a deterministic vote assignment, a run seed, and a list of
// fault components (crash-stop sets, link-outage windows, probabilistic
// drop/corrupt/delay bursts, Byzantine vote tampering). Everything is
// integer-valued so a spec round-trips losslessly through its one-line
// replay token (`serialize_token` / `parse_token`) — the token printed in
// every violation report is sufficient to reproduce the failing run
// bit-for-bit on any machine.
//
// The generator (`generate_scenario`) derives the whole spec from a single
// seed via dedicated RNG streams, so campaign seed N means the same
// schedule everywhere, forever. See DESIGN.md section 10.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/convergecast.hpp"
#include "sim/network.hpp"

namespace duti::chaos {

/// Topologies a scenario can run on (root/referee is always node 0).
enum class Topology : std::uint8_t {
  kStar,   // the paper's one-round star, k = 9
  kPath,   // worst-case diameter, k = 8
  kGrid,   // 3x4 grid: alternative routes for self-healing, k = 12
  kBtree,  // complete binary tree, k = 15
};

[[nodiscard]] const char* to_string(Topology t) noexcept;
[[nodiscard]] std::uint32_t num_nodes(Topology t) noexcept;

/// One injectable fault. Fields are interpreted per kind; unused fields
/// stay zero so component equality and hashing are well-defined.
struct FaultComponent {
  enum class Kind : std::uint8_t {
    kCrash,      // node crash-stops at round `lo`
    kOutage,     // link from->to dead for rounds [lo, lo+len)
    kDrop,       // link from->to drops with pct% during [lo, lo+len)
    kCorrupt,    // link from->to flips a bit with pct% during [lo, lo+len)
    kDelay,      // link from->to delays by `extra` with pct% in [lo, lo+len)
    kByzantine,  // node's vote is adversarially stuck at 1 (alarm flood)
  };

  Kind kind = Kind::kCrash;
  std::uint32_t node = 0;   // kCrash / kByzantine
  std::uint32_t from = 0;   // link kinds
  std::uint32_t to = 0;     // link kinds
  std::uint32_t pct = 0;    // probability in percent (integer: token-exact)
  std::uint32_t lo = 0;     // start round (crash round for kCrash)
  std::uint32_t len = 0;    // window length in rounds (link kinds)
  std::uint32_t extra = 0;  // delay_rounds for kDelay

  [[nodiscard]] bool operator==(const FaultComponent& o) const noexcept {
    return kind == o.kind && node == o.node && from == o.from && to == o.to &&
           pct == o.pct && lo == o.lo && len == o.len && extra == o.extra;
  }
};

[[nodiscard]] const char* to_string(FaultComponent::Kind k) noexcept;

/// A complete chaos experiment. `vote_pct` is each node's independent
/// probability (in percent) of voting reject; votes are derived from
/// `vote_seed` alone, and all run randomness from `run_seed` alone, so
/// faults can be edited (shrunk) without perturbing anything else.
struct ScenarioSpec {
  Topology topo = Topology::kStar;
  std::uint32_t vote_pct = 10;
  std::uint64_t vote_seed = 1;
  std::uint64_t run_seed = 1;
  std::vector<FaultComponent> components;

  [[nodiscard]] std::uint32_t k() const noexcept { return num_nodes(topo); }
};

/// Build the scenario's network (edges only, no faults, no behaviors).
[[nodiscard]] Network build_network(const ScenarioSpec& spec);

/// The scenario's deterministic vote vector (before Byzantine tampering):
/// vote_of(spec)[v] is 1 iff node v locally rejects.
[[nodiscard]] std::vector<std::uint64_t> votes_of(const ScenarioSpec& spec);

/// Votes after applying the spec's kByzantine components (stuck-at-1).
[[nodiscard]] std::vector<std::uint64_t> tampered_votes_of(
    const ScenarioSpec& spec);

/// Install the spec's crash and link-fault components into `net`.
/// Throws InvalidArgument if a component references a missing edge or an
/// out-of-range node — a malformed token fails loudly, not silently.
void apply_schedule(const ScenarioSpec& spec, Network& net);

/// Generate the scenario for campaign seed `seed`: topology, votes, and
/// 1..5 fault components drawn from dedicated streams. Per directed link
/// the generator emits at most one outage and at most one probabilistic
/// burst (the LinkFault slot structure), never crashes or tampers the
/// referee (node 0), and never crashes a node twice.
[[nodiscard]] ScenarioSpec generate_scenario(std::uint64_t seed);

/// One-line ASCII replay token, e.g.
///   chaos1;t=grid;vp=10;vs=1a2b;gs=77;c=crash:3:0;c=out:1:2:4:2
/// Integers only (seeds in hex), so serialize/parse is an exact bijection.
[[nodiscard]] std::string serialize_token(const ScenarioSpec& spec);

/// Parse a replay token; throws InvalidArgument with a pointed message on
/// any syntax or range error.
[[nodiscard]] ScenarioSpec parse_token(const std::string& token);

/// Content fingerprint of a spec (FNV-1a over all fields, order-sensitive).
[[nodiscard]] std::uint64_t spec_fingerprint(const ScenarioSpec& spec);

}  // namespace duti::chaos
