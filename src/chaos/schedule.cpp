#include "chaos/schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "sim/convergecast.hpp"
#include "util/error.hpp"
#include "util/fnv.hpp"
#include "util/rng.hpp"

namespace duti::chaos {

namespace {

// Dedicated RNG stream labels (arbitrary distinct constants; fixed forever
// so campaign seed N names the same schedule in every build).
constexpr std::uint64_t kStreamShape = 0xC0A5ULL;   // topology, vote_pct
constexpr std::uint64_t kStreamFaults = 0xFA11ULL;  // component draws
constexpr std::uint64_t kStreamVotes = 0x507EULL;   // per-node vote bits

constexpr std::uint32_t kMaxComponents = 5;

[[nodiscard]] std::string u64_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

const char* to_string(Topology t) noexcept {
  switch (t) {
    case Topology::kStar: return "star";
    case Topology::kPath: return "path";
    case Topology::kGrid: return "grid";
    case Topology::kBtree: return "btree";
  }
  return "?";
}

std::uint32_t num_nodes(Topology t) noexcept {
  switch (t) {
    case Topology::kStar: return 9;
    case Topology::kPath: return 8;
    case Topology::kGrid: return 12;  // 3x4
    case Topology::kBtree: return 15;
  }
  return 0;
}

const char* to_string(FaultComponent::Kind k) noexcept {
  switch (k) {
    case FaultComponent::Kind::kCrash: return "crash";
    case FaultComponent::Kind::kOutage: return "out";
    case FaultComponent::Kind::kDrop: return "drop";
    case FaultComponent::Kind::kCorrupt: return "cor";
    case FaultComponent::Kind::kDelay: return "del";
    case FaultComponent::Kind::kByzantine: return "byz";
  }
  return "?";
}

Network build_network(const ScenarioSpec& spec) {
  Network net(spec.k());
  switch (spec.topo) {
    case Topology::kStar:
      net.add_star(0);
      break;
    case Topology::kPath:
      add_path(net);
      break;
    case Topology::kGrid:
      add_grid(net, 3, 4);
      break;
    case Topology::kBtree:
      add_binary_tree(net);
      break;
  }
  return net;
}

std::vector<std::uint64_t> votes_of(const ScenarioSpec& spec) {
  require(spec.vote_pct <= 100, "votes_of: vote_pct must be <= 100");
  std::vector<std::uint64_t> votes(spec.k());
  const double p = static_cast<double>(spec.vote_pct) / 100.0;
  for (std::uint32_t v = 0; v < spec.k(); ++v) {
    // Per-node stream: a vote depends only on (vote_seed, v), never on
    // other nodes — shrinking components cannot ripple into the votes.
    Rng rng = make_rng(spec.vote_seed, kStreamVotes, v);
    votes[v] = rng.next_bernoulli(p) ? 1 : 0;
  }
  return votes;
}

std::vector<std::uint64_t> tampered_votes_of(const ScenarioSpec& spec) {
  std::vector<std::uint64_t> votes = votes_of(spec);
  for (const auto& c : spec.components) {
    if (c.kind == FaultComponent::Kind::kByzantine) {
      require(c.node < votes.size(), "tampered_votes_of: node out of range");
      votes[c.node] = 1;  // stuck-at-alarm: the adversarial direction for
                          // a threshold referee
    }
  }
  return votes;
}

void apply_schedule(const ScenarioSpec& spec, Network& net) {
  // LinkFault has one outage slot and one probabilistic-burst slot per
  // link, so components of the same family on the same directed link must
  // be unique; merge into per-link faults and fail loudly on conflicts.
  std::map<std::pair<NodeId, NodeId>, LinkFault> faults;
  std::set<std::pair<NodeId, NodeId>> has_outage, has_burst;
  for (const auto& c : spec.components) {
    switch (c.kind) {
      case FaultComponent::Kind::kCrash:
        require(c.node < net.num_nodes(),
                "apply_schedule: crash node out of range");
        net.schedule_crash(c.node, c.lo);
        break;
      case FaultComponent::Kind::kByzantine:
        break;  // vote-level: handled by tampered_votes_of
      case FaultComponent::Kind::kOutage:
      case FaultComponent::Kind::kDrop:
      case FaultComponent::Kind::kCorrupt:
      case FaultComponent::Kind::kDelay: {
        require(net.has_edge(c.from, c.to),
                "apply_schedule: component references a missing edge");
        require(c.len >= 1, "apply_schedule: window length must be >= 1");
        const std::pair<NodeId, NodeId> link{c.from, c.to};
        LinkFault& f = faults[link];
        if (c.kind == FaultComponent::Kind::kOutage) {
          require(has_outage.insert(link).second,
                  "apply_schedule: two outages on one link");
          f.outage_lo = c.lo;
          f.outage_hi = c.lo + c.len;
        } else {
          require(c.pct >= 1 && c.pct <= 100,
                  "apply_schedule: pct must be in [1,100]");
          require(has_burst.insert(link).second,
                  "apply_schedule: two probabilistic bursts on one link");
          f.burst_lo = c.lo;
          f.burst_hi = c.lo + c.len;
          const double p = static_cast<double>(c.pct) / 100.0;
          if (c.kind == FaultComponent::Kind::kDrop) f.drop_prob = p;
          if (c.kind == FaultComponent::Kind::kCorrupt) f.corrupt_prob = p;
          if (c.kind == FaultComponent::Kind::kDelay) {
            require(c.extra >= 1, "apply_schedule: delay extra must be >= 1");
            f.delay_prob = p;
            f.delay_rounds = c.extra;
          }
        }
        break;
      }
    }
  }
  for (const auto& [link, fault] : faults) {
    net.set_link_fault(link.first, link.second, fault);
  }
}

ScenarioSpec generate_scenario(std::uint64_t seed) {
  ScenarioSpec spec;
  Rng shape = make_rng(seed, kStreamShape);
  spec.topo = static_cast<Topology>(shape.next_below(4));
  // Vote rates straddle typical referee thresholds: mostly-quiet networks
  // (uniform-looking) and noisy ones (far-looking).
  const std::uint32_t vote_rates[] = {5, 10, 20, 40};
  spec.vote_pct = vote_rates[shape.next_below(4)];
  spec.vote_seed = derive_seed(seed, kStreamVotes);
  spec.run_seed = derive_seed(seed, 0x52D5ULL);

  Network net = build_network(spec);
  const std::uint32_t k = spec.k();
  Rng rng = make_rng(seed, kStreamFaults);
  const std::uint32_t n_components = 1 + static_cast<std::uint32_t>(
                                             rng.next_below(kMaxComponents));
  std::set<std::uint32_t> crashed, tampered;
  std::set<std::pair<NodeId, NodeId>> has_outage, has_burst;
  // Rounds where faults bite: convergecast traffic happens in the first
  // few hop-windows; windows beyond ~3 ReliableConfig windows are dead air.
  const std::uint32_t kRoundSpan = 200;
  for (std::uint32_t i = 0; i < n_components; ++i) {
    FaultComponent c;
    const std::uint64_t kind_draw = rng.next_below(6);
    c.kind = static_cast<FaultComponent::Kind>(kind_draw);
    switch (c.kind) {
      case FaultComponent::Kind::kCrash: {
        // Never crash the referee; at most one crash per node. Crashes at
        // round 0 dominate (the analytically-predictable case); later
        // crashes exercise mid-protocol death.
        c.node = 1 + static_cast<std::uint32_t>(rng.next_below(k - 1));
        if (!crashed.insert(c.node).second) continue;  // slot taken: skip
        c.lo = rng.next_bernoulli(0.75)
                   ? 0
                   : 1 + static_cast<std::uint32_t>(rng.next_below(8));
        break;
      }
      case FaultComponent::Kind::kByzantine: {
        c.node = 1 + static_cast<std::uint32_t>(rng.next_below(k - 1));
        if (!tampered.insert(c.node).second) continue;
        break;
      }
      default: {
        // Pick a random directed edge.
        std::vector<std::pair<NodeId, NodeId>> edges;
        for (NodeId u = 0; u < k; ++u) {
          for (const NodeId v : net.neighbors(u)) edges.push_back({u, v});
        }
        const auto link = edges[rng.next_below(edges.size())];
        c.from = link.first;
        c.to = link.second;
        if (c.kind == FaultComponent::Kind::kOutage) {
          // Half the outages target a leaf's tree link at a protocol-live
          // round: round 0 carries the leaf's only DATA attempt and round
          // 1 its ACK, so a short window there interrogates the
          // retransmit contract head-on (a healthy transport retries
          // through it; a retry-starved one loses or double-counts the
          // value). The other half roam the schedule freely.
          if (rng.next_bernoulli(0.5)) {
            const SpanningTree tree = bfs_spanning_tree(net, 0);
            std::vector<NodeId> leaves;
            std::vector<bool> has_child(k, false);
            for (NodeId v = 1; v < k; ++v) has_child[tree.parent[v]] = true;
            for (NodeId v = 1; v < k; ++v) {
              if (!has_child[v]) leaves.push_back(v);
            }
            const NodeId leaf = leaves[rng.next_below(leaves.size())];
            if (rng.next_bernoulli(0.5)) {  // round-0 DATA attempt
              c.from = leaf;
              c.to = tree.parent[leaf];
              c.lo = 0;
            } else {  // round-1 ACK back down the same tree edge
              c.from = tree.parent[leaf];
              c.to = leaf;
              c.lo = 1;
            }
            c.len = 1 + static_cast<std::uint32_t>(rng.next_below(2));
            if (!has_outage.insert({c.from, c.to}).second) continue;
          } else {
            if (!has_outage.insert(link).second) continue;
            // Bias toward the opening rounds (where convergecast traffic
            // actually flows) and toward windows short enough to stay
            // within the transport's provable tolerance.
            c.lo = static_cast<std::uint32_t>(
                rng.next_bernoulli(0.5) ? rng.next_below(16)
                                        : rng.next_below(kRoundSpan));
            c.len = 1 + static_cast<std::uint32_t>(
                            rng.next_bernoulli(0.5) ? rng.next_below(2)
                                                    : rng.next_below(16));
          }
        } else {
          if (!has_burst.insert(link).second) continue;
          c.lo = static_cast<std::uint32_t>(rng.next_below(kRoundSpan));
          c.len = 1 + static_cast<std::uint32_t>(rng.next_below(64));
          const std::uint32_t pcts[] = {10, 25, 50, 90};
          c.pct = pcts[rng.next_below(4)];
          if (c.kind == FaultComponent::Kind::kDelay) {
            c.extra = 1 + static_cast<std::uint32_t>(rng.next_below(4));
          }
        }
        break;
      }
    }
    spec.components.push_back(c);
  }
  return spec;
}

std::string serialize_token(const ScenarioSpec& spec) {
  std::string out = "chaos1;t=";
  out += to_string(spec.topo);
  out += ";vp=" + std::to_string(spec.vote_pct);
  out += ";vs=" + u64_hex(spec.vote_seed);
  out += ";gs=" + u64_hex(spec.run_seed);
  for (const auto& c : spec.components) {
    out += ";c=";
    out += to_string(c.kind);
    switch (c.kind) {
      case FaultComponent::Kind::kCrash:
        out += ":" + std::to_string(c.node) + ":" + std::to_string(c.lo);
        break;
      case FaultComponent::Kind::kByzantine:
        out += ":" + std::to_string(c.node);
        break;
      case FaultComponent::Kind::kOutage:
        out += ":" + std::to_string(c.from) + ":" + std::to_string(c.to) +
               ":" + std::to_string(c.lo) + ":" + std::to_string(c.len);
        break;
      case FaultComponent::Kind::kDrop:
      case FaultComponent::Kind::kCorrupt:
        out += ":" + std::to_string(c.from) + ":" + std::to_string(c.to) +
               ":" + std::to_string(c.pct) + ":" + std::to_string(c.lo) +
               ":" + std::to_string(c.len);
        break;
      case FaultComponent::Kind::kDelay:
        out += ":" + std::to_string(c.from) + ":" + std::to_string(c.to) +
               ":" + std::to_string(c.pct) + ":" + std::to_string(c.extra) +
               ":" + std::to_string(c.lo) + ":" + std::to_string(c.len);
        break;
    }
  }
  return out;
}

namespace {

[[nodiscard]] std::vector<std::string> split(const std::string& s,
                                             char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& s, int base,
                                      const char* what) {
  require(!s.empty(), std::string("parse_token: empty ") + what);
  std::uint64_t value = 0;
  for (const char ch : s) {
    std::uint64_t digit = 0;
    if (ch >= '0' && ch <= '9') {
      digit = static_cast<std::uint64_t>(ch - '0');
    } else if (base == 16 && ch >= 'a' && ch <= 'f') {
      digit = static_cast<std::uint64_t>(ch - 'a' + 10);
    } else {
      throw InvalidArgument(std::string("parse_token: bad digit in ") +
                            what + ": '" + s + "'");
    }
    require(digit < static_cast<std::uint64_t>(base),
            std::string("parse_token: digit out of base in ") + what);
    value = value * static_cast<std::uint64_t>(base) + digit;
  }
  return value;
}

[[nodiscard]] std::uint32_t parse_u32(const std::string& s,
                                      const char* what) {
  const std::uint64_t v = parse_u64(s, 10, what);
  require(v <= 0xFFFFFFFFULL,
          std::string("parse_token: value too large for ") + what);
  return static_cast<std::uint32_t>(v);
}

}  // namespace

ScenarioSpec parse_token(const std::string& token) {
  const auto fields = split(token, ';');
  require(!fields.empty() && fields[0] == "chaos1",
          "parse_token: token must start with 'chaos1'");
  ScenarioSpec spec;
  bool have_topo = false;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const auto& field = fields[i];
    const std::size_t eq = field.find('=');
    require(eq != std::string::npos,
            "parse_token: field without '=': '" + field + "'");
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    if (key == "t") {
      have_topo = true;
      if (val == "star") {
        spec.topo = Topology::kStar;
      } else if (val == "path") {
        spec.topo = Topology::kPath;
      } else if (val == "grid") {
        spec.topo = Topology::kGrid;
      } else if (val == "btree") {
        spec.topo = Topology::kBtree;
      } else {
        throw InvalidArgument("parse_token: unknown topology '" + val + "'");
      }
    } else if (key == "vp") {
      spec.vote_pct = parse_u32(val, "vp");
      require(spec.vote_pct <= 100, "parse_token: vp must be <= 100");
    } else if (key == "vs") {
      spec.vote_seed = parse_u64(val, 16, "vs");
    } else if (key == "gs") {
      spec.run_seed = parse_u64(val, 16, "gs");
    } else if (key == "c") {
      const auto parts = split(val, ':');
      require(!parts.empty(), "parse_token: empty component");
      FaultComponent c;
      const std::string& kind = parts[0];
      auto expect_arity = [&](std::size_t n) {
        require(parts.size() == n + 1,
                "parse_token: component '" + kind + "' wants " +
                    std::to_string(n) + " args, got " +
                    std::to_string(parts.size() - 1));
      };
      if (kind == "crash") {
        expect_arity(2);
        c.kind = FaultComponent::Kind::kCrash;
        c.node = parse_u32(parts[1], "crash node");
        c.lo = parse_u32(parts[2], "crash round");
      } else if (kind == "byz") {
        expect_arity(1);
        c.kind = FaultComponent::Kind::kByzantine;
        c.node = parse_u32(parts[1], "byz node");
      } else if (kind == "out") {
        expect_arity(4);
        c.kind = FaultComponent::Kind::kOutage;
        c.from = parse_u32(parts[1], "out from");
        c.to = parse_u32(parts[2], "out to");
        c.lo = parse_u32(parts[3], "out lo");
        c.len = parse_u32(parts[4], "out len");
      } else if (kind == "drop" || kind == "cor") {
        expect_arity(5);
        c.kind = kind == "drop" ? FaultComponent::Kind::kDrop
                                : FaultComponent::Kind::kCorrupt;
        c.from = parse_u32(parts[1], "burst from");
        c.to = parse_u32(parts[2], "burst to");
        c.pct = parse_u32(parts[3], "burst pct");
        c.lo = parse_u32(parts[4], "burst lo");
        c.len = parse_u32(parts[5], "burst len");
      } else if (kind == "del") {
        expect_arity(6);
        c.kind = FaultComponent::Kind::kDelay;
        c.from = parse_u32(parts[1], "del from");
        c.to = parse_u32(parts[2], "del to");
        c.pct = parse_u32(parts[3], "del pct");
        c.extra = parse_u32(parts[4], "del extra");
        c.lo = parse_u32(parts[5], "del lo");
        c.len = parse_u32(parts[6], "del len");
      } else {
        throw InvalidArgument("parse_token: unknown component kind '" +
                              kind + "'");
      }
      spec.components.push_back(c);
    } else {
      throw InvalidArgument("parse_token: unknown key '" + key + "'");
    }
  }
  require(have_topo, "parse_token: missing topology field");
  // Validate against the real network so a hand-edited token cannot build
  // an inconsistent scenario (throws on missing edges / bad nodes).
  Network net = build_network(spec);
  apply_schedule(spec, net);
  return spec;
}

std::uint64_t spec_fingerprint(const ScenarioSpec& spec) {
  Fnv64 h;
  h.u64(static_cast<std::uint64_t>(spec.topo));
  h.u64(spec.vote_pct);
  h.u64(spec.vote_seed);
  h.u64(spec.run_seed);
  for (const auto& c : spec.components) {
    h.u64(static_cast<std::uint64_t>(c.kind));
    h.u64(c.node);
    h.u64(c.from);
    h.u64(c.to);
    h.u64(c.pct);
    h.u64(c.lo);
    h.u64(c.len);
    h.u64(c.extra);
  }
  return h.value();
}

}  // namespace duti::chaos
