#include "util/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace duti {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      const std::string body = arg.substr(2);
      require(!body.empty(), "Cli: bare '--' is not a valid flag");
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";  // bare boolean flag
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::optional<std::string> Cli::get(const std::string& name) const {
  if (auto it = flags_.find(name); it != flags_.end()) return it->second;
  std::string env = "DUTI_";
  for (char ch : name) {
    env += (ch == '-') ? '_' : static_cast<char>(std::toupper(
                                   static_cast<unsigned char>(ch)));
  }
  if (const char* v = std::getenv(env.c_str())) return std::string(v);
  return std::nullopt;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw InvalidArgument("Cli: flag --" + name + " expects an integer, got '" +
                          *v + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw InvalidArgument("Cli: flag --" + name + " expects a number, got '" +
                          *v + "'");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw InvalidArgument("Cli: flag --" + name + " expects a boolean, got '" +
                        *v + "'");
}

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      out.push_back(std::stoll(item));
    } catch (const std::exception&) {
      throw InvalidArgument("Cli: flag --" + name +
                            " expects comma-separated integers, got '" + *v +
                            "'");
    }
  }
  require(!out.empty(), "Cli: flag --" + name + " list is empty");
  return out;
}

}  // namespace duti
