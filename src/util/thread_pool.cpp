#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "util/error.hpp"

namespace duti {

namespace {
// Set for the lifetime of a pool task; nested parallel_for calls detect it
// and run inline so a worker never blocks waiting on its own pool.
thread_local bool tls_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  if (threads_ == 1) return;  // inline-only pool, no OS threads
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const ChunkBody& body) {
  require(static_cast<bool>(body), "parallel_for: null body");
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;

  auto run_chunk = [&](std::size_t c, unsigned worker) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    body(begin, end, worker);
  };

  // Serial paths: 1-thread pool or a single chunk. Chunk layout (and
  // therefore any per-chunk reduction) is identical to the parallel path.
  if (threads_ == 1 || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c, 0);
    return;
  }

  // Nested call from a pool worker (this pool's or another's): share the
  // chunks with idle workers instead of serializing. The caller claims and
  // runs chunks itself, so the loop always makes progress even if every
  // helper task is stuck behind long-running work in the queue — a worker
  // never blocks waiting on an unstarted task, which is what made the old
  // "workers block on nested loops" design a deadlock. Helper tasks that
  // get popped after the last chunk was claimed see an exhausted cursor
  // and return without touching the (by then possibly dead) loop body, so
  // the shared state owns copies of everything a late helper may read.
  if (tls_in_worker) {
    struct ShareState {
      std::atomic<std::size_t> next{0};
      std::size_t chunks = 0;
      std::size_t n = 0;
      std::size_t grain = 0;
      const ChunkBody* body = nullptr;  // valid while done < chunks
      std::atomic<bool> failed{false};
      std::exception_ptr error;  // guarded by mutex
      std::size_t done = 0;      // guarded by mutex; one tick per chunk
      std::mutex mutex;
      std::condition_variable all_done;
    };
    auto state = std::make_shared<ShareState>();
    state->chunks = chunks;
    state->n = n;
    state->grain = grain;
    state->body = &body;

    auto drain = [](const std::shared_ptr<ShareState>& s, unsigned worker) {
      for (;;) {
        const std::size_t c = s->next.fetch_add(1, std::memory_order_relaxed);
        if (c >= s->chunks) return;
        if (!s->failed.load(std::memory_order_relaxed)) {
          try {
            const std::size_t begin = c * s->grain;
            const std::size_t end = std::min(s->n, begin + s->grain);
            (*s->body)(begin, end, worker);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(s->mutex);
            if (!s->error) s->error = std::current_exception();
            s->failed.store(true, std::memory_order_relaxed);
          }
        }
        {
          // Every claimed chunk ticks `done` exactly once (even when
          // skipped after a failure), so done == chunks is the precise
          // "no chunk is running or will run" completion condition.
          const std::lock_guard<std::mutex> lock(s->mutex);
          if (++s->done == s->chunks) s->all_done.notify_all();
        }
      }
    };

    const unsigned helpers = static_cast<unsigned>(
        std::min<std::size_t>(threads_ - 1, chunks - 1));
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (unsigned h = 1; h <= helpers; ++h) {
        tasks_.emplace([state, drain, h] { drain(state, h); });
      }
    }
    wake_.notify_all();

    drain(state, 0);  // the caller is runner slot 0 and claims until empty
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->all_done.wait(lock,
                           [&] { return state->done == state->chunks; });
    }
    if (state->error) std::rethrow_exception(state->error);
    return;
  }

  // Shared state for this loop: a dynamic chunk cursor (load balance; chunk
  // CONTENT stays deterministic) and completion/error plumbing.
  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::size_t pending;
    std::mutex done_mutex;
    std::condition_variable done;
  } state;

  const unsigned runners =
      static_cast<unsigned>(std::min<std::size_t>(threads_, chunks));
  state.pending = runners;

  auto runner = [&, chunks](unsigned worker) {
    for (;;) {
      const std::size_t c = state.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks || state.failed.load(std::memory_order_relaxed)) break;
      try {
        run_chunk(c, worker);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state.error_mutex);
        if (!state.error) state.error = std::current_exception();
        state.failed.store(true, std::memory_order_relaxed);
      }
    }
    {
      // Notify while holding the lock: the waiter destroys `state` as soon
      // as it observes pending == 0, which it can only do after we release
      // the mutex — so the cv is never signalled after destruction.
      const std::lock_guard<std::mutex> lock(state.done_mutex);
      --state.pending;
      state.done.notify_one();
    }
  };

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (unsigned w = 0; w < runners; ++w) {
      tasks_.emplace([&runner, w] { runner(w); });
    }
  }
  wake_.notify_all();

  {
    std::unique_lock<std::mutex> lock(state.done_mutex);
    state.done.wait(lock, [&state] { return state.pending == 0; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_threads());
  return pool;
}

unsigned ThreadPool::configured_threads() {
  if (const char* env = std::getenv("DUTI_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool ThreadPool::in_worker() noexcept { return tls_in_worker; }

}  // namespace duti
