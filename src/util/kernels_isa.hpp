// Internal contract between the kernel dispatcher (kernels.cpp) and the
// per-ISA translation units (kernels_sse2.cpp, kernels_avx2.cpp). Each ISA
// TU is compiled with its own -m flags (confined there by CMake source
// properties); this header stays baseline-portable — the templates below
// only touch intrinsics through the ops struct `V` each TU supplies, so
// they compile (uninstantiated) everywhere, including the header
// self-sufficiency check.
//
// Bit-identity argument for the WHT drivers (DESIGN.md section 11): the
// scalar transform applies stages len = 1, 2, 4, ..., n/2 in order, and a
// stage only combines elements at distance len. Radix-4 fusion computes the
// two fused stages' intermediate sums/differences explicitly and in the
// scalar order, so every output's floating-point expression tree is
// unchanged; cache blocking reorders work only across disjoint index
// ranges. No FP operation is reassociated anywhere, so SIMD lanes produce
// the exact scalar bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/rng.hpp"

namespace duti::kernels {

/// WHT cache block, in doubles (32 KiB: stages with span < kWhtBlock run
/// block-resident before the streaming outer stages touch the array).
inline constexpr std::size_t kWhtBlock = std::size_t{1} << 12;

namespace detail {

/// One radix-2 stage at distance `len` (len >= V::kWidth, elementwise).
template <class V>
inline void wht_radix2_stage(double* d, std::size_t n, std::size_t len) {
  for (std::size_t base = 0; base < n; base += len << 1) {
    for (std::size_t i = 0; i < len; i += V::kWidth) {
      const auto a = V::load(d + base + i);
      const auto b = V::load(d + base + len + i);
      V::store(d + base + i, V::add(a, b));
      V::store(d + base + len + i, V::sub(a, b));
    }
  }
}

/// Stages (len, 2*len) fused: groups of four len-blocks, elementwise.
template <class V>
inline void wht_radix4_stages(double* d, std::size_t n, std::size_t len) {
  for (std::size_t base = 0; base < n; base += len << 2) {
    for (std::size_t i = 0; i < len; i += V::kWidth) {
      const auto a = V::load(d + base + i);
      const auto b = V::load(d + base + len + i);
      const auto c = V::load(d + base + 2 * len + i);
      const auto e = V::load(d + base + 3 * len + i);
      const auto s1 = V::add(a, b);   // stage len, upper halves
      const auto d1 = V::sub(a, b);
      const auto s2 = V::add(c, e);
      const auto d2 = V::sub(c, e);
      V::store(d + base + i, V::add(s1, s2));  // stage 2*len
      V::store(d + base + len + i, V::add(d1, d2));
      V::store(d + base + 2 * len + i, V::sub(s1, s2));
      V::store(d + base + 3 * len + i, V::sub(d1, d2));
    }
  }
}

/// All stages with span < size, run block-resident. size >= 4, power of 2.
/// V::wht4_groups handles the fused (1, 2) stage pair in-register.
template <class V>
inline void wht_in_block(double* d, std::size_t size) {
  V::wht4_groups(d, size);
  std::size_t len = 4;
  while (len < size) {
    if (len * 2 < size) {
      wht_radix4_stages<V>(d, size, len);
      len *= 4;
    } else {
      wht_radix2_stage<V>(d, size, len);
      len *= 2;
    }
  }
}

/// Full transform: per-block inner stages, then streaming outer stages.
template <class V>
inline void wht_blocked(std::span<double> data) {
  const std::size_t n = data.size();
  double* d = data.data();
  if (n < 4) {
    if (n == 2) {
      const double a = d[0];
      const double b = d[1];
      d[0] = a + b;
      d[1] = a - b;
    }
    return;
  }
  const std::size_t block = n < kWhtBlock ? n : kWhtBlock;
  for (std::size_t b0 = 0; b0 < n; b0 += block) {
    wht_in_block<V>(d + b0, block);
  }
  std::size_t len = block;
  while (len < n) {
    if (len * 2 < n) {
      wht_radix4_stages<V>(d, n, len);
      len *= 4;
    } else {
      wht_radix2_stage<V>(d, n, len);
      len *= 2;
    }
  }
}

}  // namespace detail

// Per-ISA entry points, defined in kernels_sse2.cpp / kernels_avx2.cpp.
// kernels.cpp only calls into a namespace whose TU was compiled in
// (DUTI_KERNELS_HAVE_* definitions set by src/util/CMakeLists.txt).
namespace sse2 {
void wht(std::span<double> data);
[[nodiscard]] std::uint64_t collision_pairs_from_counts(
    std::span<const std::uint64_t> counts);
[[nodiscard]] std::uint64_t distinct_from_counts(
    std::span<const std::uint64_t> counts);
void add_u64(std::span<std::uint64_t> acc,
             std::span<const std::uint64_t> addend);
}  // namespace sse2

namespace avx2 {
void wht(std::span<double> data);
[[nodiscard]] std::uint64_t collision_pairs_from_counts(
    std::span<const std::uint64_t> counts);
[[nodiscard]] std::uint64_t distinct_from_counts(
    std::span<const std::uint64_t> counts);
void add_u64(std::span<std::uint64_t> acc,
             std::span<const std::uint64_t> addend);
void nuz_sample_many(Rng& rng, const std::uint64_t* zwords, unsigned ell,
                     double eps, std::span<std::uint64_t> out);
}  // namespace avx2

}  // namespace duti::kernels
