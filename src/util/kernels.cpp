#include "util/kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "util/error.hpp"
#include "util/kernels_isa.hpp"

namespace duti {

namespace {

SimdLevel clamp_to_supported(SimdLevel level) noexcept {
  const SimdLevel cap = simd_supported_level();
  return static_cast<int>(level) > static_cast<int>(cap) ? cap : level;
}

SimdLevel level_from_env() noexcept {
  if (const char* env = std::getenv("DUTI_SIMD")) {
    SimdLevel parsed = SimdLevel::kScalar;
    if (simd_level_from_string(env, parsed)) return clamp_to_supported(parsed);
  }
  return simd_supported_level();
}

// -1 = not yet initialized from the environment.
std::atomic<int> g_active_level{-1};

}  // namespace

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

SimdLevel simd_supported_level() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  SimdLevel best = SimdLevel::kScalar;
#ifdef DUTI_KERNELS_HAVE_SSE2
  if (__builtin_cpu_supports("sse2")) best = SimdLevel::kSse2;
#endif
#ifdef DUTI_KERNELS_HAVE_AVX2
  if (best == SimdLevel::kSse2 && __builtin_cpu_supports("avx2")) {
    best = SimdLevel::kAvx2;
  }
#endif
  return best;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel simd_active_level() noexcept {
  int level = g_active_level.load(std::memory_order_relaxed);
  if (level < 0) {
    int expected = -1;
    g_active_level.compare_exchange_strong(
        expected, static_cast<int>(level_from_env()),
        std::memory_order_relaxed);
    level = g_active_level.load(std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

SimdLevel simd_set_level(SimdLevel level) noexcept {
  const SimdLevel effective = clamp_to_supported(level);
  g_active_level.store(static_cast<int>(effective), std::memory_order_relaxed);
  return effective;
}

bool simd_level_from_string(std::string_view text, SimdLevel& out) noexcept {
  if (text == "off" || text == "scalar") {
    out = SimdLevel::kScalar;
    return true;
  }
  if (text == "sse2") {
    out = SimdLevel::kSse2;
    return true;
  }
  if (text == "avx2") {
    out = SimdLevel::kAvx2;
    return true;
  }
  if (text == "auto") {
    out = simd_supported_level();
    return true;
  }
  return false;
}

namespace kernels {

// ---------------------------------------------------------------------------
// Walsh-Hadamard transform.

void wht_scalar(std::span<double> data) {
  const std::size_t n = data.size();
  for (std::size_t len = 1; len < n; len <<= 1) {
    for (std::size_t base = 0; base < n; base += len << 1) {
      for (std::size_t i = base; i < base + len; ++i) {
        const double a = data[i];
        const double b = data[i + len];
        data[i] = a + b;
        data[i + len] = a - b;
      }
    }
  }
}

void wht(std::span<double> data) {
  switch (simd_active_level()) {
#ifdef DUTI_KERNELS_HAVE_AVX2
    case SimdLevel::kAvx2:
      avx2::wht(data);
      return;
#endif
#ifdef DUTI_KERNELS_HAVE_SSE2
    case SimdLevel::kSse2:
      sse2::wht(data);
      return;
#endif
    default:
      wht_scalar(data);
      return;
  }
}

// ---------------------------------------------------------------------------
// Integer tallies.

void tally_scalar(std::span<const std::uint64_t> samples,
                  std::span<std::uint64_t> counts) {
  for (const std::uint64_t s : samples) ++counts[s];
}

void tally(std::span<const std::uint64_t> samples,
           std::span<std::uint64_t> counts) {
  // A banked variant (two interleaved scatter banks merged with the
  // vector add) was measured 1.2-4x *slower* than the plain scatter at
  // every domain/sample shape in bench/micro_kernels: the extra
  // O(domain) zero-fills and merge passes cost more than the second
  // increment chain buys. The scatter is the dispatched path at every
  // SIMD level; bench/micro_kernels keeps measuring it so a future ISA
  // where gathers win shows up in BENCH_kernels.json.
  tally_scalar(samples, counts);
}

std::uint64_t collision_pairs_from_counts_scalar(
    std::span<const std::uint64_t> counts) {
  std::uint64_t pairs = 0;
  for (const std::uint64_t c : counts) pairs += c * (c - 1) / 2;
  return pairs;
}

std::uint64_t collision_pairs_from_counts(
    std::span<const std::uint64_t> counts) {
  switch (simd_active_level()) {
#ifdef DUTI_KERNELS_HAVE_AVX2
    case SimdLevel::kAvx2:
      return avx2::collision_pairs_from_counts(counts);
#endif
#ifdef DUTI_KERNELS_HAVE_SSE2
    case SimdLevel::kSse2:
      return sse2::collision_pairs_from_counts(counts);
#endif
    default:
      return collision_pairs_from_counts_scalar(counts);
  }
}

std::uint64_t distinct_from_counts_scalar(
    std::span<const std::uint64_t> counts) {
  std::uint64_t distinct = 0;
  for (const std::uint64_t c : counts) distinct += c > 0 ? 1 : 0;
  return distinct;
}

std::uint64_t distinct_from_counts(std::span<const std::uint64_t> counts) {
  switch (simd_active_level()) {
#ifdef DUTI_KERNELS_HAVE_AVX2
    case SimdLevel::kAvx2:
      return avx2::distinct_from_counts(counts);
#endif
#ifdef DUTI_KERNELS_HAVE_SSE2
    case SimdLevel::kSse2:
      return sse2::distinct_from_counts(counts);
#endif
    default:
      return distinct_from_counts_scalar(counts);
  }
}

void add_u64_scalar(std::span<std::uint64_t> acc,
                    std::span<const std::uint64_t> addend) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += addend[i];
}

void add_u64(std::span<std::uint64_t> acc,
             std::span<const std::uint64_t> addend) {
  require(acc.size() == addend.size(), "add_u64: size mismatch");
  switch (simd_active_level()) {
#ifdef DUTI_KERNELS_HAVE_AVX2
    case SimdLevel::kAvx2:
      avx2::add_u64(acc, addend);
      return;
#endif
#ifdef DUTI_KERNELS_HAVE_SSE2
    case SimdLevel::kSse2:
      sse2::add_u64(acc, addend);
      return;
#endif
    default:
      add_u64_scalar(acc, addend);
      return;
  }
}

// ---------------------------------------------------------------------------
// Batched samplers.

void uniform_sample_many_scalar(Rng& rng, std::uint64_t bound,
                                std::span<std::uint64_t> out) {
  for (auto& s : out) s = rng.next_below(bound);
}

void uniform_sample_many(Rng& rng, std::uint64_t bound,
                         std::span<std::uint64_t> out) {
  require(bound >= 1, "uniform_sample_many: bound must be positive");
  // The scalar rejection loop is the dispatched path at every level. A
  // four-lane AVX2 Lemire kernel (stream-identical by FIFO raw replay)
  // measured ~2x *slower* in bench/micro_kernels: the xoshiro draws are
  // serial either way, and AVX2 has no 64-bit multiply, so both the
  // rejection test and the high half cost several emulated 32-bit
  // multiplies per lane against one hardware mul for scalar. The bench
  // keeps timing this entry point so a regression (or an ISA where wide
  // multiplies win) shows up in BENCH_kernels.json.
  uniform_sample_many_scalar(rng, bound, out);
}

void nuz_sample_many_scalar(Rng& rng, std::span<const std::uint64_t> zwords,
                            unsigned ell, double eps,
                            std::span<std::uint64_t> out) {
  const std::uint64_t side = 1ULL << ell;
  for (auto& o : out) {
    const std::uint64_t x = rng.next_below(side);
    const int sign = ((zwords[x >> 6] >> (x & 63U)) & 1ULL) ? -1 : +1;
    // Same FP expression as NuZ::sample: P(s=+1 | x) = (1 + z(x) eps) / 2.
    const double p_plus = 0.5 * (1.0 + static_cast<double>(sign) * eps);
    const int s = rng.next_double() < p_plus ? +1 : -1;
    o = x | (static_cast<std::uint64_t>(s == -1) << ell);
  }
}

void nuz_sample_many(Rng& rng, std::span<const std::uint64_t> zwords,
                     unsigned ell, double eps,
                     std::span<std::uint64_t> out) {
  require(ell >= 1 && ell <= 30, "nuz_sample_many: ell must be in [1,30]");
  require(zwords.size() >= ((std::size_t{1} << ell) + 63) / 64,
          "nuz_sample_many: zwords too small for 2^ell signs");
#ifdef DUTI_KERNELS_HAVE_AVX2
  if (simd_active_level() == SimdLevel::kAvx2 && out.size() >= 4) {
    avx2::nuz_sample_many(rng, zwords.data(), ell, eps, out);
    return;
  }
#endif
  nuz_sample_many_scalar(rng, zwords, ell, eps, out);
}

}  // namespace kernels
}  // namespace duti
