// Deterministic, splittable random number generation.
//
// Every experiment in this library must be reproducible bit-for-bit from a
// single seed, while still giving each (player, trial, sweep-point) its own
// statistically independent stream. We use splitmix64 to derive stream seeds
// and xoshiro256++ as the bulk generator; both are public-domain algorithms
// (Blackman & Vigna) reimplemented here so the library has no dependencies.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace duti {

/// splitmix64: a tiny 64-bit generator used to seed other generators and to
/// derive per-stream seeds from (seed, stream-index) pairs. Passes BigCrush
/// when used as a generator in its own right.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mix an arbitrary list of 64-bit labels into a single stream seed.
/// Used to derive independent streams: derive_seed(root, player, trial, ...).
template <typename... Labels>
std::uint64_t derive_seed(std::uint64_t root, Labels... labels) noexcept {
  SplitMix64 sm(root);
  std::uint64_t out = sm.next();
  // Fold each label through one splitmix step keyed on the running value.
  ((out = SplitMix64(out ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(labels) + 1))).next()),
   ...);
  return out;
}

/// xoshiro256++ 1.0: the library's bulk pseudo-random generator.
/// Satisfies std::uniform_random_bit_generator, so it plugs into <random>.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seed the four 64-bit words of state via splitmix64, per the authors'
  /// recommendation (avoids the all-zero state and correlated seeds).
  explicit Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Multiply-shift rejection sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Fair coin: ±1 with equal probability.
  int next_sign() noexcept { return ((*this)() >> 63) ? 1 : -1; }

  /// Bernoulli(p) draw.
  bool next_bernoulli(double p) noexcept { return next_double() < p; }

  /// The four state words, exposed so deterministic-RNG accounting can be
  /// checkpointed and replayed (the calibration memo stores the stream's
  /// entry state in its key and restores the exit state on a hit, so a
  /// memoized construction consumes the stream exactly like a fresh one).
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] State state() const noexcept { return state_; }
  void set_state(const State& s) noexcept { state_ = s; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Default generator alias used throughout the library.
using Rng = Xoshiro256pp;

/// Construct the RNG for a derived stream in one call.
template <typename... Labels>
Rng make_rng(std::uint64_t root, Labels... labels) noexcept {
  return Rng(derive_seed(root, labels...));
}

}  // namespace duti
