// Confidence intervals and concentration helpers for empirical success-rate
// estimation. The experiment harness decides "does this tester succeed with
// probability >= 2/3?" from finitely many trials; these helpers quantify the
// uncertainty in that decision.
#pragma once

#include <cstdint>

namespace duti {

/// A two-sided interval [lo, hi] for an unknown probability.
struct Interval {
  double lo = 0.0;
  double hi = 1.0;

  [[nodiscard]] bool contains(double p) const noexcept {
    return lo <= p && p <= hi;
  }
  [[nodiscard]] double width() const noexcept { return hi - lo; }
  [[nodiscard]] double midpoint() const noexcept { return 0.5 * (lo + hi); }
};

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials`, at confidence level given by the normal quantile `z`
/// (z = 1.96 for ~95%, z = 2.58 for ~99%). Well-behaved near 0 and 1,
/// unlike the Wald interval.
[[nodiscard]] Interval wilson_interval(std::uint64_t successes,
                                       std::uint64_t trials,
                                       double z = 1.96);

/// Hoeffding bound: number of trials sufficient to estimate a probability
/// within +-margin with failure probability at most delta.
[[nodiscard]] std::uint64_t hoeffding_trials(double margin, double delta);

/// Two-sided Hoeffding deviation for a mean of `trials` [0,1]-valued samples:
/// P(|empirical - true| >= eps) <= 2 exp(-2 trials eps^2); returns that bound.
[[nodiscard]] double hoeffding_tail(std::uint64_t trials, double eps);

/// Standard normal quantile Phi^{-1}(p) for p in (0, 1) (Acklam's rational
/// approximation, ~1e-9 absolute error). normal_quantile(0.975) ~ 1.96.
[[nodiscard]] double normal_quantile(double p);

/// The z multiplier that makes `checks` two-sided interval evaluations
/// jointly valid with total failure probability at most `delta` (Bonferroni:
/// each check runs at level delta/checks). This is what lets an adaptive
/// probe peek at its Wilson intervals after every batch without the repeated
/// looks eroding the certificate (DESIGN.md section 8).
[[nodiscard]] double union_bound_z(double delta, std::uint64_t checks);

/// Running binomial tally with convenience accessors.
class SuccessCounter {
 public:
  void record(bool success) noexcept {
    ++trials_;
    if (success) ++successes_;
  }

  [[nodiscard]] std::uint64_t trials() const noexcept { return trials_; }
  [[nodiscard]] std::uint64_t successes() const noexcept { return successes_; }
  [[nodiscard]] double rate() const noexcept {
    return trials_ == 0 ? 0.0
                        : static_cast<double>(successes_) /
                              static_cast<double>(trials_);
  }
  [[nodiscard]] Interval wilson(double z = 1.96) const {
    return wilson_interval(successes_, trials_, z);
  }

  /// Fold another tally into this one. Counts are integers, so merging
  /// per-shard counters (in any order) reproduces the single-threaded tally
  /// exactly — the keystone of the harness's bit-identical parallelism.
  void merge(const SuccessCounter& other) noexcept {
    successes_ += other.successes_;
    trials_ += other.trials_;
  }

 private:
  std::uint64_t successes_ = 0;
  std::uint64_t trials_ = 0;
};

}  // namespace duti
