// AVX2 kernel variants, including the wide batched nu_z sampler. This TU (and
// kernels_sse2.cpp) is the only place allowed to touch <immintrin.h> —
// enforced by the duti-lint rule no-intrinsics-outside-kernels. Compiled
// with -mavx2 and DUTI_KERNELS_BUILD_AVX2 by src/util/CMakeLists.txt on
// x86 only; the dispatcher never reaches avx2:: unless cpuid agrees.
#ifdef DUTI_KERNELS_BUILD_AVX2

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/kernels_isa.hpp"

namespace duti::kernels::avx2 {

namespace {

struct V256 {
  static constexpr std::size_t kWidth = 4;
  static __m256d load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, __m256d v) { _mm256_storeu_pd(p, v); }
  static __m256d add(__m256d a, __m256d b) { return _mm256_add_pd(a, b); }
  static __m256d sub(__m256d a, __m256d b) { return _mm256_sub_pd(a, b); }

  // Fused stages (1, 2) per group of four doubles, one register each:
  // y = [x0+x1, x0-x1, x2+x3, x2-x3], out = [y0+y2, y1+y3, y0-y2, y1-y3]
  // — the exact scalar op tree, no reassociation.
  static void wht4_groups(double* d, std::size_t n) {
    for (std::size_t i = 0; i < n; i += 4) {
      const __m256d v = _mm256_loadu_pd(d + i);
      const __m256d a = _mm256_permute_pd(v, 0x0);  // [x0 x0 x2 x2]
      const __m256d b = _mm256_permute_pd(v, 0xF);  // [x1 x1 x3 x3]
      const __m256d s = _mm256_add_pd(a, b);
      const __m256d t = _mm256_sub_pd(a, b);
      const __m256d y = _mm256_blend_pd(s, t, 0xA);  // [s0 d0 s2 d2]
      const __m256d lo = _mm256_permute2f128_pd(y, y, 0x00);  // [y0 y1 y0 y1]
      const __m256d hi = _mm256_permute2f128_pd(y, y, 0x11);  // [y2 y3 y2 y3]
      const __m256d zs = _mm256_add_pd(lo, hi);
      const __m256d zd = _mm256_sub_pd(lo, hi);
      _mm256_storeu_pd(d + i, _mm256_blend_pd(zs, zd, 0xC));
    }
  }
};

inline __m256i loadu(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void storeu(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

inline std::uint64_t hsum_u64(__m256i acc) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

inline __m256i set1_u64(std::uint64_t v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

/// Low 64 bits of the lane-wise 64x64 product (wrapping, same mod-2^64
/// value as the scalar u64 multiply).
inline __m256i mullo_u64(__m256i a, __m256i b) {
  const __m256i t0 = _mm256_mul_epu32(a, b);  // al*bl
  const __m256i t1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i t2 = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  return _mm256_add_epi64(t0,
                          _mm256_slli_epi64(_mm256_add_epi64(t1, t2), 32));
}

}  // namespace

void wht(std::span<double> data) { detail::wht_blocked<V256>(data); }

std::uint64_t collision_pairs_from_counts(
    std::span<const std::uint64_t> counts) {
  const std::uint64_t* p = counts.data();
  const std::size_t n = counts.size();
  __m256i acc = _mm256_setzero_si256();
  const __m256i one = set1_u64(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c = loadu(p + i);
    const __m256i lo = mullo_u64(c, _mm256_sub_epi64(c, one));
    acc = _mm256_add_epi64(acc, _mm256_srli_epi64(lo, 1));  // c*(c-1) even
  }
  std::uint64_t pairs = hsum_u64(acc);
  for (; i < n; ++i) pairs += p[i] * (p[i] - 1) / 2;
  return pairs;
}

std::uint64_t distinct_from_counts(std::span<const std::uint64_t> counts) {
  const std::uint64_t* p = counts.data();
  const std::size_t n = counts.size();
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = set1_u64(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i eq0 = _mm256_cmpeq_epi64(loadu(p + i), zero);
    acc = _mm256_add_epi64(acc, _mm256_add_epi64(eq0, one));  // -1+1 or 0+1
  }
  std::uint64_t distinct = hsum_u64(acc);
  for (; i < n; ++i) distinct += p[i] > 0 ? 1 : 0;
  return distinct;
}

void add_u64(std::span<std::uint64_t> acc,
             std::span<const std::uint64_t> addend) {
  std::uint64_t* a = acc.data();
  const std::uint64_t* b = addend.data();
  const std::size_t n = acc.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    storeu(a + i, _mm256_add_epi64(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

void nuz_sample_many(Rng& rng, const std::uint64_t* zwords, unsigned ell,
                     double eps, std::span<std::uint64_t> out) {
  // Each nu_z sample consumes exactly two raw draws: x = r >> (64-ell)
  // (next_below on the power-of-two side never rejects) and the Bernoulli
  // uniform d = double(r >> 11) * 2^-53. Batch eight raws, de-interleave
  // into x/d lanes in sample order, and select the sign bit vectorially;
  // the RNG stream is consumed in exactly the scalar order.
  constexpr std::size_t kW = 4;
  const std::size_t n = out.size();
  const std::uint64_t side = 1ULL << ell;
  // Same FP expressions as NuZ::sample for z = +1 / -1 (the multiply by
  // +-1.0 and the 1.0 +- eps addition are IEEE-exact either way).
  const double p_pos = 0.5 * (1.0 + eps);
  const double p_neg = 0.5 * (1.0 - eps);
  const __m128i xshift = _mm_cvtsi32_si128(64 - static_cast<int>(ell));
  const __m256i lo32 = set1_u64(0xFFFFFFFFULL);
  const __m256i magic_lo = set1_u64(0x4330000000000000ULL);  // double 2^52
  const __m256i magic_hi = set1_u64(0x4530000000000000ULL);  // double 2^84
  const __m256d exp_lo = _mm256_set1_pd(0x1.0p52);
  const __m256d exp_hi = _mm256_set1_pd(0x1.0p84);
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  const __m256d vp_pos = _mm256_set1_pd(p_pos);
  const __m256d vp_neg = _mm256_set1_pd(p_neg);
  const __m256i vside = set1_u64(side);
  const __m256i v63 = set1_u64(63);
  const __m256i vone = set1_u64(1);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    alignas(32) std::uint64_t raw[2 * kW];
    for (std::size_t w = 0; w < 2 * kW; ++w) raw[w] = rng();
    const __m256i v0 = _mm256_load_si256(reinterpret_cast<__m256i*>(raw));
    const __m256i v1 =
        _mm256_load_si256(reinterpret_cast<__m256i*>(raw + kW));
    // De-interleave to sample order: xs = [r0 r2 r4 r6], ds = [r1 r3 r5 r7].
    const __m256i xs_raw = _mm256_permute4x64_epi64(
        _mm256_unpacklo_epi64(v0, v1), _MM_SHUFFLE(3, 1, 2, 0));
    const __m256i ds_raw = _mm256_permute4x64_epi64(
        _mm256_unpackhi_epi64(v0, v1), _MM_SHUFFLE(3, 1, 2, 0));
    const __m256i xs = _mm256_srl_epi64(xs_raw, xshift);
    // Exact u64 -> double for values < 2^53 via the two-part magic trick;
    // both halves and their sum are exactly representable.
    const __m256i d53 = _mm256_srli_epi64(ds_raw, 11);
    const __m256d dlo = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(_mm256_and_si256(d53, lo32),
                                            magic_lo)),
        exp_lo);
    const __m256d dhi = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(_mm256_srli_epi64(d53, 32),
                                            magic_hi)),
        exp_hi);
    const __m256d d = _mm256_mul_pd(_mm256_add_pd(dhi, dlo), scale);
    // z(x): gather the sign words and test bit (x & 63).
    const __m256i words = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(zwords),
        _mm256_srli_epi64(xs, 6), 8);
    const __m256i bit = _mm256_and_si256(
        _mm256_srlv_epi64(words, _mm256_and_si256(xs, v63)), vone);
    const __m256i is_neg = _mm256_cmpeq_epi64(bit, vone);
    const __m256d p_plus =
        _mm256_blendv_pd(vp_pos, vp_neg, _mm256_castsi256_pd(is_neg));
    // s = -1 iff !(d < p_plus); encode as the high cube bit.
    const __m256d ge = _mm256_cmp_pd(d, p_plus, _CMP_NLT_UQ);
    const __m256i sbit =
        _mm256_and_si256(_mm256_castpd_si256(ge), vside);
    storeu(out.data() + i, _mm256_or_si256(xs, sbit));
  }
  for (; i < n; ++i) {
    const std::uint64_t x = rng.next_below(side);
    const bool neg = ((zwords[x >> 6] >> (x & 63U)) & 1ULL) != 0;
    const double p_plus = neg ? p_neg : p_pos;
    const bool s_plus = rng.next_double() < p_plus;
    out[i] = x | (static_cast<std::uint64_t>(!s_plus) << ell);
  }
}

}  // namespace duti::kernels::avx2

#endif  // DUTI_KERNELS_BUILD_AVX2
