#include "util/confidence.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace duti {

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) {
  require(successes <= trials, "wilson_interval: successes > trials");
  require(z > 0.0, "wilson_interval: z must be positive");
  if (trials == 0) return Interval{0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  Interval out;
  out.lo = std::max(0.0, center - half);
  out.hi = std::min(1.0, center + half);
  return out;
}

std::uint64_t hoeffding_trials(double margin, double delta) {
  require(margin > 0.0 && margin < 1.0, "hoeffding_trials: margin in (0,1)");
  require(delta > 0.0 && delta < 1.0, "hoeffding_trials: delta in (0,1)");
  const double n = std::log(2.0 / delta) / (2.0 * margin * margin);
  return static_cast<std::uint64_t>(std::ceil(n));
}

double hoeffding_tail(std::uint64_t trials, double eps) {
  require(eps > 0.0, "hoeffding_tail: eps must be positive");
  const double n = static_cast<double>(trials);
  return std::min(1.0, 2.0 * std::exp(-2.0 * n * eps * eps));
}

double normal_quantile(double p) {
  require(p > 0.0 && p < 1.0, "normal_quantile: p in (0,1)");
  // Acklam's rational approximation, three regions.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double union_bound_z(double delta, std::uint64_t checks) {
  require(delta > 0.0 && delta < 1.0, "union_bound_z: delta in (0,1)");
  require(checks >= 1, "union_bound_z: need at least one check");
  const double per_check = delta / static_cast<double>(checks);
  return normal_quantile(1.0 - 0.5 * per_check);
}

}  // namespace duti
