#include "util/confidence.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace duti {

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) {
  require(successes <= trials, "wilson_interval: successes > trials");
  require(z > 0.0, "wilson_interval: z must be positive");
  if (trials == 0) return Interval{0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  Interval out;
  out.lo = std::max(0.0, center - half);
  out.hi = std::min(1.0, center + half);
  return out;
}

std::uint64_t hoeffding_trials(double margin, double delta) {
  require(margin > 0.0 && margin < 1.0, "hoeffding_trials: margin in (0,1)");
  require(delta > 0.0 && delta < 1.0, "hoeffding_trials: delta in (0,1)");
  const double n = std::log(2.0 / delta) / (2.0 * margin * margin);
  return static_cast<std::uint64_t>(std::ceil(n));
}

double hoeffding_tail(std::uint64_t trials, double eps) {
  require(eps > 0.0, "hoeffding_tail: eps must be positive");
  const double n = static_cast<double>(trials);
  return std::min(1.0, 2.0 * std::exp(-2.0 * n * eps * eps));
}

}  // namespace duti
