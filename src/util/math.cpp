#include "util/math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace duti {

std::uint64_t double_factorial(int n) {
  if (n <= 0) return 1;
  std::uint64_t out = 1;
  for (int i = n; i > 1; i -= 2) {
    const auto factor = static_cast<std::uint64_t>(i);
    if (out > std::numeric_limits<std::uint64_t>::max() / factor) {
      throw InvalidArgument("double_factorial: uint64 overflow at n=" +
                            std::to_string(n));
    }
    out *= factor;
  }
  return out;
}

double log_double_factorial(int n) {
  if (n <= 0) return 0.0;
  double out = 0.0;
  for (int i = n; i > 1; i -= 2) out += std::log(static_cast<double>(i));
  return out;
}

std::uint64_t binomial(int n, int k) {
  require(n >= 0, "binomial: n must be non-negative");
  if (k < 0 || k > n) return 0;
  k = std::min(k, n - k);
  // Multiplicative formula with 128-bit intermediate to detect overflow.
  __uint128_t out = 1;
  for (int i = 1; i <= k; ++i) {
    out = out * static_cast<unsigned>(n - k + i) / static_cast<unsigned>(i);
    if (out > std::numeric_limits<std::uint64_t>::max()) {
      throw InvalidArgument("binomial: uint64 overflow for C(" +
                            std::to_string(n) + "," + std::to_string(k) + ")");
    }
  }
  return static_cast<std::uint64_t>(out);
}

double log_factorial(int n) {
  require(n >= 0, "log_factorial: n must be non-negative");
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(int n, int k) {
  require(n >= 0, "log_binomial: n must be non-negative");
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t out = 1;
  for (unsigned i = 0; i < exp; ++i) {
    if (base != 0 && out > std::numeric_limits<std::uint64_t>::max() / base) {
      throw InvalidArgument("ipow: uint64 overflow");
    }
    out *= base;
  }
  return out;
}

double dpow_int(double base, unsigned exp) {
  double out = 1.0;
  double b = base;
  while (exp > 0) {
    if (exp & 1U) out *= b;
    b *= b;
    exp >>= 1U;
  }
  return out;
}

bool approx_equal(double a, double b, double tol) {
  const double diff = std::fabs(a - b);
  if (diff <= tol) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= tol * scale;
}

double binomial_upper_tail(int n, double p, int t) {
  require(n >= 0, "binomial_upper_tail: n must be non-negative");
  require(p >= 0.0 && p <= 1.0, "binomial_upper_tail: p in [0,1]");
  if (t <= 0) return 1.0;
  if (t > n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  double acc = 0.0;
  const double lp = std::log(p);
  const double lq = std::log1p(-p);
  for (int i = t; i <= n; ++i) {
    acc += std::exp(log_binomial(n, i) + i * lp + (n - i) * lq);
  }
  return std::min(1.0, acc);
}

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  require(x.size() == y.size(), "fit_line: size mismatch");
  require(x.size() >= 2, "fit_line: need at least two points");
  const auto n = static_cast<double>(x.size());
  // duti-lint: allow(pure-float-reduce) -- serial fold over one sweep's
  // handful of points, in container order; never a cross-thread tally.
  const double sx = std::accumulate(x.begin(), x.end(), 0.0);
  // duti-lint: allow(pure-float-reduce) -- same fixed-order serial fold.
  const double sy = std::accumulate(y.begin(), y.end(), 0.0);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  require(std::fabs(denom) > 1e-300, "fit_line: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r_squared = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_power_law(const std::vector<double>& x,
                        const std::vector<double>& y) {
  require(x.size() == y.size(), "fit_power_law: size mismatch");
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    require(x[i] > 0.0 && y[i] > 0.0, "fit_power_law: data must be positive");
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  return fit_line(lx, ly);
}

double median(std::vector<double> values) {
  require(!values.empty(), "median: empty input");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  if (values.size() % 2 == 1) return values[mid];
  const double hi = values[mid];
  const double lo = *std::max_element(
      values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double mean(const std::vector<double>& values) {
  require(!values.empty(), "mean: empty input");
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double sample_variance(const std::vector<double>& values) {
  require(values.size() >= 2, "sample_variance: need at least two values");
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / (static_cast<double>(values.size()) - 1.0);
}

}  // namespace duti
