// Console table and CSV writers used by the benchmark harness to print the
// experiment tables (the paper-shaped output of each bench binary).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace duti {

/// One cell: string, integer, or double (formatted with sensible precision).
using Cell = std::variant<std::string, std::int64_t, double>;

/// A simple column-aligned table. Typical use:
///
///   Table t({"k", "q*", "predicted"});
///   t.add_row({int64_t{16}, int64_t{210}, 207.8});
///   t.print(std::cout);
///   t.write_csv("out.csv");
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> row);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept {
    return headers_.size();
  }
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Render with aligned columns, a header rule, and `title` above if given.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Write as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void write_csv(const std::string& path) const;

  /// Number of significant digits used to format double cells (default 5).
  void set_precision(int digits);

 private:
  [[nodiscard]] std::string format_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 5;
};

/// Format a double with `digits` significant digits (no trailing zeros mess).
[[nodiscard]] std::string format_double(double v, int digits = 5);

}  // namespace duti
