// FNV-1a, 64-bit: a tiny, platform-stable content hash (unlike std::hash,
// whose value is implementation-defined). Used wherever the repo needs a
// fingerprint that must agree across runs, processes, and machines: the
// probe-cache record checksums, the chaos engine's run fingerprints, and
// the cache-key fingerprint.
//
// Not cryptographic — these are integrity/identity checks against
// accidental corruption and divergence, not an adversary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace duti {

/// Incremental FNV-1a accumulator. Multi-field hashes length-prefix
/// variable-width fields (see `str`) so field concatenations cannot alias.
class Fnv64 {
 public:
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

  Fnv64& bytes(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= kPrime;
    }
    return *this;
  }

  Fnv64& u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {  // explicit LE bytes: endian-stable
      h_ ^= (v >> (8 * i)) & 0xFFu;
      h_ *= kPrime;
    }
    return *this;
  }

  Fnv64& str(const std::string& s) noexcept {
    u64(s.size());  // length prefix: no field-concat aliasing
    return bytes(s.data(), s.size());
  }

 private:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h_ = kOffset;
};

/// One-shot convenience for hashing a byte range.
[[nodiscard]] inline std::uint64_t fnv64(const void* data,
                                         std::size_t len) noexcept {
  return Fnv64().bytes(data, len).value();
}

[[nodiscard]] inline std::uint64_t fnv64(const std::string& s) noexcept {
  return fnv64(s.data(), s.size());
}

}  // namespace duti
