// A small fixed-size thread pool with a chunked parallel_for, the
// concurrency substrate of the measurement stack (see DESIGN.md §7).
//
// Design constraints, in order:
//   1. Determinism. parallel_for partitions [0, n) into chunks with a layout
//      that depends only on (n, grain) — never on thread count or timing —
//      so callers can accumulate per-chunk partial results and reduce them
//      in chunk order, producing bit-identical output at any thread count.
//      Which WORKER runs a chunk is scheduled dynamically (load balance);
//      which TRIALS a chunk holds is not.
//   2. Graceful serial degradation. A 1-thread pool and a single-chunk loop
//      run inline on the calling thread. A parallel_for issued from inside a
//      pool task shares its chunks with idle workers while the caller keeps
//      claiming chunks itself (nested point→trial scheduling): the loop
//      always progresses on the calling thread, so nesting cannot deadlock,
//      and idle workers drain the inner loop instead of spinning.
//   3. No silent swallowing: the first exception thrown by a chunk body is
//      captured and rethrown on the calling thread after the loop drains.
//
// The global pool is sized by the DUTI_THREADS environment variable
// (default: std::thread::hardware_concurrency()).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace duti {

class ThreadPool {
 public:
  /// Chunk body: half-open index range [begin, end) plus the id of the
  /// worker slot executing it (0 <= worker < size()). Per-worker scratch
  /// buffers may be indexed by `worker`; per-chunk RESULTS must be keyed by
  /// the chunk range (e.g. begin / grain), never by worker.
  using ChunkBody =
      std::function<void(std::size_t begin, std::size_t end, unsigned worker)>;

  /// A pool with `threads` workers (clamped to >= 1). A 1-thread pool spawns
  /// no OS threads at all: every parallel_for runs inline.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return threads_; }

  /// Apply `body` to [0, n) in chunks of `grain` (last chunk may be short):
  /// chunk c covers [c*grain, min(n, (c+1)*grain)). Blocks until every chunk
  /// ran; rethrows the first chunk exception. Runs inline when the pool has
  /// one thread or there is at most one chunk. Called from inside a pool
  /// task (nested), the caller claims chunks itself while idle workers help
  /// drain the rest — same chunk layout, so reductions stay bit-identical.
  void parallel_for(std::size_t n, std::size_t grain, const ChunkBody& body);

  /// Process-wide pool, sized by configured_threads() on first use.
  static ThreadPool& global();

  /// DUTI_THREADS env var if set to a positive integer, else
  /// hardware_concurrency() (at least 1).
  [[nodiscard]] static unsigned configured_threads();

  /// True when called from inside a pool task (any pool).
  [[nodiscard]] static bool in_worker() noexcept;

 private:
  void worker_loop();

  unsigned threads_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

}  // namespace duti
