// SSE2 kernel variants. This TU is the only place (besides kernels_avx2.cpp)
// allowed to touch <emmintrin.h>/__m128 types — see the duti-lint rule
// no-intrinsics-outside-kernels. Compiled with -msse2 and
// DUTI_KERNELS_BUILD_SSE2 by src/util/CMakeLists.txt on x86 only; on other
// targets this file is empty and the dispatcher never reaches sse2::.
#ifdef DUTI_KERNELS_BUILD_SSE2

#include <emmintrin.h>

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/kernels_isa.hpp"

namespace duti::kernels::sse2 {

namespace {

struct V128 {
  static constexpr std::size_t kWidth = 2;
  static __m128d load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, __m128d v) { _mm_storeu_pd(p, v); }
  static __m128d add(__m128d a, __m128d b) { return _mm_add_pd(a, b); }
  static __m128d sub(__m128d a, __m128d b) { return _mm_sub_pd(a, b); }

  // Fused stages (1, 2) over every aligned group of four doubles
  // [x0 x1 x2 x3]: stage 1 forms y = [x0+x1, x0-x1, x2+x3, x2-x3], stage 2
  // combines the halves elementwise — exactly the scalar op tree.
  static void wht4_groups(double* d, std::size_t n) {
    for (std::size_t i = 0; i < n; i += 4) {
      const __m128d v01 = _mm_loadu_pd(d + i);
      const __m128d v23 = _mm_loadu_pd(d + i + 2);
      const __m128d a01 = _mm_shuffle_pd(v01, v01, 0);  // [x0 x0]
      const __m128d b01 = _mm_shuffle_pd(v01, v01, 3);  // [x1 x1]
      const __m128d a23 = _mm_shuffle_pd(v23, v23, 0);  // [x2 x2]
      const __m128d b23 = _mm_shuffle_pd(v23, v23, 3);  // [x3 x3]
      const __m128d s01 = _mm_add_pd(a01, b01);
      const __m128d d01 = _mm_sub_pd(a01, b01);
      const __m128d s23 = _mm_add_pd(a23, b23);
      const __m128d d23 = _mm_sub_pd(a23, b23);
      // y01 = [x0+x1, x0-x1], y23 = [x2+x3, x2-x3].
      const __m128d y01 = _mm_shuffle_pd(s01, d01, 2);
      const __m128d y23 = _mm_shuffle_pd(s23, d23, 2);
      _mm_storeu_pd(d + i, _mm_add_pd(y01, y23));
      _mm_storeu_pd(d + i + 2, _mm_sub_pd(y01, y23));
    }
  }
};

inline __m128i loadu(const std::uint64_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void storeu(std::uint64_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

inline std::uint64_t hsum_u64(__m128i acc) {
  alignas(16) std::uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  return lanes[0] + lanes[1];
}

}  // namespace

void wht(std::span<double> data) { detail::wht_blocked<V128>(data); }

std::uint64_t collision_pairs_from_counts(
    std::span<const std::uint64_t> counts) {
  const std::uint64_t* p = counts.data();
  const std::size_t n = counts.size();
  __m128i acc = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i c = loadu(p + i);
    const __m128i b = _mm_sub_epi64(c, one);
    // Low 64 bits of c*(c-1): al*bl + ((ah*bl + al*bh) << 32), wrapping —
    // the same mod-2^64 value the scalar u64 multiply produces.
    const __m128i t0 = _mm_mul_epu32(c, b);
    const __m128i t1 = _mm_mul_epu32(_mm_srli_epi64(c, 32), b);
    const __m128i t2 = _mm_mul_epu32(c, _mm_srli_epi64(b, 32));
    const __m128i lo =
        _mm_add_epi64(t0, _mm_slli_epi64(_mm_add_epi64(t1, t2), 32));
    acc = _mm_add_epi64(acc, _mm_srli_epi64(lo, 1));  // c*(c-1) is even
  }
  std::uint64_t pairs = hsum_u64(acc);
  for (; i < n; ++i) pairs += p[i] * (p[i] - 1) / 2;
  return pairs;
}

std::uint64_t distinct_from_counts(std::span<const std::uint64_t> counts) {
  const std::uint64_t* p = counts.data();
  const std::size_t n = counts.size();
  __m128i acc = _mm_setzero_si128();
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i c = loadu(p + i);
    // A 64-bit lane is zero iff both 32-bit halves compare equal to zero
    // (SSE2 has no 64-bit compare): all-ones for c==0, else not-all-ones.
    const __m128i eq32 = _mm_cmpeq_epi32(c, zero);
    const __m128i both =
        _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    acc = _mm_add_epi64(acc, _mm_add_epi64(both, one));  // -1+1=0 or 0+1=1
  }
  std::uint64_t distinct = hsum_u64(acc);
  for (; i < n; ++i) distinct += p[i] > 0 ? 1 : 0;
  return distinct;
}

void add_u64(std::span<std::uint64_t> acc,
             std::span<const std::uint64_t> addend) {
  std::uint64_t* a = acc.data();
  const std::uint64_t* b = addend.data();
  const std::size_t n = acc.size();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    storeu(a + i, _mm_add_epi64(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

}  // namespace duti::kernels::sse2

#endif  // DUTI_KERNELS_BUILD_SSE2
