// The vectorized compute-kernel layer (DESIGN.md section 11): one
// runtime-dispatched entry point per hot loop, each with a scalar reference
// twin. Contract: for identical inputs (including RNG state), the
// dispatched kernel and its `_scalar` twin produce bit-identical outputs
// and leave the RNG in the same state, at every SimdLevel — SIMD here is a
// pure reassociation-free speedup, never a numerical variant. The
// equivalence suite (tests/test_kernels.cpp) enforces this across levels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace duti::kernels {

/// In-place unnormalized Walsh-Hadamard transform; data.size() must be a
/// power of two (callers validate). Dispatched: cache-blocked radix-4
/// butterflies; bit-identical to wht_scalar by construction (the fused
/// stages perform exactly the scalar additions, in the scalar order).
void wht(std::span<double> data);

/// Reference: the textbook stage-by-stage butterfly loop.
void wht_scalar(std::span<double> data);

/// Histogram `samples` into `counts`: counts[s] += multiplicity of s.
/// Entries of `samples` must be < counts.size(); `counts` is NOT cleared
/// (callers zero or accumulate deliberately).
void tally(std::span<const std::uint64_t> samples,
           std::span<std::uint64_t> counts);
void tally_scalar(std::span<const std::uint64_t> samples,
                  std::span<std::uint64_t> counts);

/// Sum over cells of c*(c-1)/2 (wrapping u64 arithmetic, same as scalar).
[[nodiscard]] std::uint64_t collision_pairs_from_counts(
    std::span<const std::uint64_t> counts);
[[nodiscard]] std::uint64_t collision_pairs_from_counts_scalar(
    std::span<const std::uint64_t> counts);

/// Number of cells with a nonzero count.
[[nodiscard]] std::uint64_t distinct_from_counts(
    std::span<const std::uint64_t> counts);
[[nodiscard]] std::uint64_t distinct_from_counts_scalar(
    std::span<const std::uint64_t> counts);

/// Elementwise acc[i] += addend[i]; spans must have equal size. The chunk-
/// reduction primitive of the probe engine.
void add_u64(std::span<std::uint64_t> acc,
             std::span<const std::uint64_t> addend);
void add_u64_scalar(std::span<std::uint64_t> acc,
                    std::span<const std::uint64_t> addend);

/// Fill `out` with iid uniform draws from [0, bound) using Lemire
/// multiply-shift rejection, consuming `rng` EXACTLY like out.size()
/// repeated rng.next_below(bound) calls — outputs AND the final RNG state
/// are bit-identical at every SimdLevel. Currently the scalar loop at
/// every level: a stream-identical AVX2 variant measured slower (see
/// kernels.cpp); the batched entry point stays so callers and the bench
/// are already shaped for an ISA where it pays.
void uniform_sample_many(Rng& rng, std::uint64_t bound,
                         std::span<std::uint64_t> out);
void uniform_sample_many_scalar(Rng& rng, std::uint64_t bound,
                                std::span<std::uint64_t> out);

/// Batched nu_z sampling over the cube {0,1}^ell with perturbation sign
/// bits `zwords` (bit x set means z(x) = -1, as in PerturbationVector):
/// each sample consumes exactly two raw draws (x, then the Bernoulli
/// uniform), in sample order — identical stream to repeated NuZ::sample.
/// Requires 1 <= ell <= 30 and zwords covering 2^ell bits.
void nuz_sample_many(Rng& rng, std::span<const std::uint64_t> zwords,
                     unsigned ell, double eps, std::span<std::uint64_t> out);
void nuz_sample_many_scalar(Rng& rng, std::span<const std::uint64_t> zwords,
                            unsigned ell, double eps,
                            std::span<std::uint64_t> out);

}  // namespace duti::kernels
