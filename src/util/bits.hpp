// Bit-manipulation helpers for indexing the Boolean cube {-1,1}^m.
//
// Throughout the library a point of {-1,1}^m is encoded as the m low bits of
// an unsigned integer, with bit i = 1 meaning coordinate i = -1 and bit
// i = 0 meaning coordinate i = +1. (This convention makes the character
// chi_S(x) = (-1)^{popcount(x & S)}, matching the Walsh-Hadamard transform.)
#pragma once

#include <bit>
#include <cstdint>

namespace duti {

/// Coordinate i of the cube point encoded by `x`: +1 or -1.
[[nodiscard]] constexpr int cube_coord(std::uint64_t x, unsigned i) noexcept {
  return ((x >> i) & 1ULL) ? -1 : +1;
}

/// Character chi_S evaluated at cube point x: (-1)^{|{i in S : x_i = -1}|}.
[[nodiscard]] constexpr int chi(std::uint64_t s_mask,
                                std::uint64_t x) noexcept {
  return (std::popcount(s_mask & x) & 1) ? -1 : +1;
}

/// Parity of popcount: 0 or 1.
[[nodiscard]] constexpr int parity(std::uint64_t x) noexcept {
  return std::popcount(x) & 1;
}

/// True iff x is a power of two (exactly one bit set).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); undefined for x == 0 (asserted by callers).
[[nodiscard]] constexpr unsigned floor_log2(std::uint64_t x) noexcept {
  return 63U - static_cast<unsigned>(std::countl_zero(x));
}

/// Iterate subsets: next subset of `mask` after `sub` in the standard
/// (sub - mask) & mask enumeration; returns 0 after the last subset.
/// Usage: for (uint64_t sub = mask;; sub = next_subset(sub, mask)) { ...
///          if (sub == 0) break; } visits all nonempty subsets; include 0
/// separately if needed.
[[nodiscard]] constexpr std::uint64_t next_subset(std::uint64_t sub,
                                                  std::uint64_t mask) noexcept {
  return (sub - 1) & mask;
}

}  // namespace duti
