// Minimal command-line / environment flag parsing for the bench binaries and
// examples. Flags look like --name=value or --name value; every flag can
// also be supplied via the environment as DUTI_<NAME> (upper-cased, dashes
// to underscores), which lets `for b in build/bench/*; do $b; done` runs be
// tuned globally without editing commands.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace duti {

class Cli {
 public:
  /// Parse argv; throws InvalidArgument on malformed flags.
  Cli(int argc, const char* const* argv);

  /// Value lookup order: command line, then DUTI_<NAME> env var, then none.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of integers, e.g. --ks=1,2,4,8.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// True if --help/-h was passed.
  [[nodiscard]] bool help_requested() const noexcept { return help_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

}  // namespace duti
