// Error types shared across the duti library.
#pragma once

#include <stdexcept>
#include <string>

namespace duti {

/// Base class for all errors thrown by the duti library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function receives an argument outside its domain
/// (e.g. a negative probability, an epsilon outside (0, 2]).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a requested computation would exceed hard resource limits
/// (e.g. asking for an exact enumeration over a domain too large to hold).
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

/// Internal helper: throw InvalidArgument unless `cond` holds. The
/// `const char*` overload is the hot-path form: literal call sites must not
/// materialize a std::string (one heap allocation) when the check passes —
/// the batched protocol plane's zero-allocation-per-trial gate
/// (bench/micro_protocol) counts every one.
inline void require(bool cond, const char* what) {
  if (!cond) throw InvalidArgument(what);
}
inline void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

}  // namespace duti
