#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace duti {

std::string format_double(double v, int digits) {
  std::ostringstream os;
  os << std::setprecision(digits) << std::defaultfloat << v;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  require(row.size() == headers_.size(),
          "Table::add_row: cell count does not match header count");
  rows_.push_back(std::move(row));
}

void Table::set_precision(int digits) {
  require(digits >= 1 && digits <= 17, "Table::set_precision: digits in [1,17]");
  precision_ = digits;
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  return format_double(std::get<double>(c), precision_);
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& cells : rendered) print_row(cells);
  os.flush();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("Table::write_csv: cannot open " + path);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) f << ',';
    f << csv_escape(headers_[c]);
  }
  f << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) f << ',';
      f << csv_escape(format_cell(row[c]));
    }
    f << '\n';
  }
}

}  // namespace duti
