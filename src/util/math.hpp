// Small numeric helpers used across the library: factorial-family functions,
// binomials (exact and logarithmic), integer powers, and float comparisons.
#pragma once

#include <cstdint>
#include <vector>

namespace duti {

/// Double factorial N!! = N * (N-2) * (N-4) * ... (1 for N <= 0).
/// Used by Proposition 5.2: |X_S| <= (|S|-1)!! * (n/2)^{q-|S|/2}.
/// Throws InvalidArgument if the result would overflow uint64.
[[nodiscard]] std::uint64_t double_factorial(int n);

/// log(N!!) computed stably for large N.
[[nodiscard]] double log_double_factorial(int n);

/// Exact binomial coefficient C(n, k); throws on overflow of uint64.
[[nodiscard]] std::uint64_t binomial(int n, int k);

/// log(n!) via lgamma.
[[nodiscard]] double log_factorial(int n);

/// log C(n, k); returns -inf when k < 0 or k > n.
[[nodiscard]] double log_binomial(int n, int k);

/// Integer power base^exp with overflow check.
[[nodiscard]] std::uint64_t ipow(std::uint64_t base, unsigned exp);

/// base^exp as double (no overflow concerns; exp >= 0).
[[nodiscard]] double dpow_int(double base, unsigned exp);

/// Relative-or-absolute closeness test for doubles.
[[nodiscard]] bool approx_equal(double a, double b, double tol = 1e-9);

/// Exact binomial upper tail P(Bin(n, p) >= t), summed in log space.
[[nodiscard]] double binomial_upper_tail(int n, double p, int t);

/// Least-squares fit of y = a + b*x; returns {a, b}.
/// Used to fit log-log slopes in the experiment shape checks.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit fit_line(const std::vector<double>& x,
                                 const std::vector<double>& y);

/// Fit y ~ c * x^p on positive data by regressing log y on log x.
/// Returns {log c as intercept, p as slope}.
[[nodiscard]] LinearFit fit_power_law(const std::vector<double>& x,
                                      const std::vector<double>& y);

/// Median of a (copied) vector; throws on empty input.
[[nodiscard]] double median(std::vector<double> values);

/// Arithmetic mean; throws on empty input.
[[nodiscard]] double mean(const std::vector<double>& values);

/// Unbiased sample variance; throws if fewer than two values.
[[nodiscard]] double sample_variance(const std::vector<double>& values);

}  // namespace duti
