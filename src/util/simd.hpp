// Runtime SIMD dispatch state for the compute-kernel layer (DESIGN.md
// section 11). The library ships scalar, SSE2 and AVX2 variants of its hot
// kernels; which variant runs is decided once at startup from cpuid,
// overridable with DUTI_SIMD=auto|off|sse2|avx2 (and per-process via
// simd_set_level, for equivalence tests and benchmarks).
//
// This header is intrinsics-free on purpose: <immintrin.h> and the __m128/
// __m256 types are confined to src/util/kernels_*.cpp (enforced by the
// duti-lint rule no-intrinsics-outside-kernels), so every other TU builds
// with baseline flags on every architecture.
#pragma once

#include <string_view>

namespace duti {

/// Instruction-set tiers, ordered: higher levels strictly extend lower ones.
enum class SimdLevel : int {
  kScalar = 0,  ///< portable C++ only (DUTI_SIMD=off)
  kSse2 = 1,    ///< 128-bit double/integer kernels
  kAvx2 = 2,    ///< 256-bit kernels incl. batched samplers
};

/// Short lowercase name ("scalar", "sse2", "avx2") for logs and JSON.
[[nodiscard]] const char* simd_level_name(SimdLevel level) noexcept;

/// Best level this binary can run: the highest tier that was both compiled
/// in (ISA TUs present) and is reported by cpuid on this machine.
[[nodiscard]] SimdLevel simd_supported_level() noexcept;

/// The level kernels dispatch on right now. Initialized on first use from
/// DUTI_SIMD (default auto = supported level), clamped to supported.
[[nodiscard]] SimdLevel simd_active_level() noexcept;

/// Override the active level (clamped to supported; returns what was
/// actually installed). For tests and benchmarks that compare tiers
/// in-process; the environment is only read once.
SimdLevel simd_set_level(SimdLevel level) noexcept;

/// Parse a DUTI_SIMD value: "off"/"scalar", "sse2", "avx2", or "auto"
/// (the supported level). Returns false (out untouched) on anything else.
[[nodiscard]] bool simd_level_from_string(std::string_view text,
                                          SimdLevel& out) noexcept;

}  // namespace duti
