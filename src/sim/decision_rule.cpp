#include "sim/decision_rule.hpp"

#include "util/error.hpp"

namespace duti {

namespace {
std::uint64_t count_rejects(std::span<const std::uint8_t> votes) {
  std::uint64_t rejects = 0;
  for (std::uint8_t v : votes) {
    if (v == 0) ++rejects;
  }
  return rejects;
}
}  // namespace

DecisionRule DecisionRule::and_rule() {
  return DecisionRule("AND", [](std::span<const std::uint8_t> votes) {
    for (std::uint8_t v : votes) {
      if (v == 0) return false;
    }
    return true;
  });
}

DecisionRule DecisionRule::or_rule() {
  return DecisionRule("OR", [](std::span<const std::uint8_t> votes) {
    for (std::uint8_t v : votes) {
      if (v != 0) return true;
    }
    return false;
  });
}

DecisionRule DecisionRule::threshold(std::uint64_t t) {
  require(t >= 1, "DecisionRule::threshold: T must be >= 1");
  return DecisionRule("threshold-" + std::to_string(t),
                      [t](std::span<const std::uint8_t> votes) {
                        return count_rejects(votes) < t;
                      });
}

DecisionRule DecisionRule::majority() {
  return DecisionRule("majority", [](std::span<const std::uint8_t> votes) {
    return 2 * count_rejects(votes) <= votes.size();
  });
}

DecisionRule DecisionRule::parity() {
  return DecisionRule("parity", [](std::span<const std::uint8_t> votes) {
    return (count_rejects(votes) % 2) == 0;
  });
}

DecisionRule DecisionRule::symmetric(
    std::string name,
    std::function<bool(std::uint64_t, std::uint64_t)> accept_fn) {
  require(static_cast<bool>(accept_fn),
          "DecisionRule::symmetric: empty function");
  return DecisionRule(
      std::move(name),
      [accept_fn = std::move(accept_fn)](std::span<const std::uint8_t> votes) {
        return accept_fn(count_rejects(votes), votes.size());
      });
}

DecisionRule DecisionRule::custom(std::string name, Fn fn) {
  require(static_cast<bool>(fn), "DecisionRule::custom: empty function");
  return DecisionRule(std::move(name), std::move(fn));
}

}  // namespace duti
