// Reliable transport over lossy links: stop-and-wait ACK + timeout +
// bounded-retry retransmission with exponential backoff, plus a
// self-healing convergecast built on top of it.
//
// The paper's model assumes every player's bit reaches the referee. The
// fault models in `Network` break that assumption; this layer buys it back
// at an explicit, honestly-accounted bit cost (sequence-number headers,
// ACKs, retransmissions), so experiments can measure what reliability is
// worth — and what crashes cost even with retransmission (the degradation
// report of `convergecast_sum_reliable`).
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "sim/convergecast.hpp"
#include "sim/network.hpp"

namespace duti {

struct ReliableConfig {
  unsigned ack_timeout = 2;   // rounds to wait before the first retransmit
  unsigned max_retries = 4;   // retransmissions after the initial send
  unsigned backoff = 2;       // timeout multiplier per retry (exponential)
  unsigned seq_bits = 16;     // accounted width of the sequence number

  /// Accounted header width of every DATA/ACK frame (kind tag + seq).
  [[nodiscard]] std::uint64_t header_bits() const noexcept {
    return 2 + seq_bits;
  }
  /// Timeout before retransmission number `attempt` (0-based), capped so
  /// pathological configs cannot overflow.
  [[nodiscard]] unsigned timeout(unsigned attempt) const noexcept;
  /// Rounds from first transmission until the sender declares failure.
  [[nodiscard]] unsigned window() const noexcept;
};

/// An application message delivered by the reliable layer (header removed).
struct ReliableDelivery {
  NodeId from = 0;
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> payload;  // app words only
  std::uint64_t bit_size = 0;          // app bits only
};

/// A send that exhausted its retries; the app payload is returned so the
/// caller can reroute it (e.g. re-parent in the convergecast).
struct FailedSend {
  NodeId to = 0;
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> payload;  // app words only
  std::uint64_t bit_size = 0;          // app bits only
};

struct ReliableStats {
  std::uint64_t data_sent = 0;        // first transmissions
  std::uint64_t retransmissions = 0;  // repeat transmissions
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicates = 0;  // received DATA frames already seen
  std::uint64_t delivered = 0;   // distinct DATA frames delivered to the app
  std::uint64_t failed = 0;      // sends abandoned after max_retries
  std::uint64_t payload_bits = 0;   // useful app bits (first transmissions)
  std::uint64_t overhead_bits = 0;  // headers + ACKs + retransmissions

  void merge(const ReliableStats& other) noexcept;
};

/// Per-node reliable transport endpoint, driven from inside a NodeBehavior.
/// Call `receive(ctx)` first each round (consumes the inbox, emits ACKs,
/// settles acknowledged sends), then queue new `send`s, then `flush(ctx)`
/// (transmits queued frames and due retransmissions).
class ReliableEndpoint {
 public:
  ReliableEndpoint() = default;
  explicit ReliableEndpoint(ReliableConfig cfg) : cfg_(cfg) {}

  /// Queue `payload` for reliable delivery to `to`; transmitted on the next
  /// flush(). `bit_size` is the app payload width; the frame is charged
  /// `bit_size + header_bits()` on the wire. Returns the sequence number.
  std::uint64_t send(NodeId to, std::vector<std::uint64_t> payload,
                     std::uint64_t bit_size);

  /// Process this round's inbox: deliver new DATA (deduplicated), ACK every
  /// DATA frame, settle pending sends on ACK receipt.
  [[nodiscard]] std::vector<ReliableDelivery> receive(RoundContext& ctx);

  /// Transmit queued frames and due retransmissions; sends that exhausted
  /// their retries move to the failure list.
  void flush(RoundContext& ctx);

  /// True when nothing is awaiting an ACK or a first transmission.
  [[nodiscard]] bool idle() const noexcept { return pending_.empty(); }

  /// Drain sends that exhausted their retries since the last call.
  [[nodiscard]] std::vector<FailedSend> take_failures();

  [[nodiscard]] const ReliableStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ReliableConfig& config() const noexcept { return cfg_; }

 private:
  struct Pending {
    NodeId to = 0;
    std::uint64_t seq = 0;
    std::vector<std::uint64_t> payload;  // app words
    std::uint64_t bit_size = 0;          // app bits
    unsigned attempts = 0;               // transmissions so far
    unsigned next_attempt_round = 0;
  };

  ReliableConfig cfg_;
  std::uint64_t next_seq_ = 1;
  std::vector<Pending> pending_;
  std::vector<FailedSend> failures_;
  std::set<std::pair<NodeId, std::uint64_t>> seen_;  // dedup (from, seq)
  ReliableStats stats_;
};

/// Degradation report of a fault-tolerant convergecast: how much of the
/// network's value actually reached the root, and what the reliability
/// machinery spent getting it there.
struct ReliableConvergecastResult {
  std::uint64_t root_sum = 0;
  std::uint32_t values_reached = 0;  // node values folded into root_sum
  std::uint32_t values_total = 0;
  std::uint32_t values_lost = 0;     // values abandoned (no route to root)
  std::uint32_t reparent_events = 0;
  ReliableStats transport;  // aggregated over all endpoints
  NetworkStats stats;

  /// Fraction of node values folded into root_sum. Can marginally exceed
  /// 1.0 under sustained heavy loss: a sender whose ACKs were ALL lost
  /// cannot distinguish "parent folded my frame" from "parent never saw
  /// it" (the two-generals ambiguity), and re-routing the frame after such
  /// a spurious failure double-counts it. Resolving the ambiguity is
  /// impossible over a lossy link; we prefer a small double-count chance
  /// (~(drop^2)^(max_retries+1) per hop) over certainly losing subtrees.
  [[nodiscard]] double delivery_fraction() const noexcept {
    return values_total == 0
               ? 1.0
               : static_cast<double>(values_reached) /
                     static_cast<double>(values_total);
  }
};

/// Fault-tolerant convergecast: like convergecast_sum, but every partial
/// sum travels over the reliable transport (lost frames are retransmitted)
/// and a node whose parent stops acknowledging re-parents to another
/// neighbour strictly closer to the root (self-healing BFS tree). Nodes
/// whose entire route to the root is gone give up; their values are counted
/// in the degradation report rather than silently corrupting the sum.
/// Each frame carries (partial sum, contributing-node count), so the root
/// knows exactly how many of the k values its total includes.
[[nodiscard]] ReliableConvergecastResult convergecast_sum_reliable(
    Network& net, const SpanningTree& tree,
    const std::vector<std::uint64_t>& values, std::uint64_t bits_per_value,
    Rng& rng, const ReliableConfig& cfg = {});

}  // namespace duti
