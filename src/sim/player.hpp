// Players in the simultaneous-message model (Section 2): each player sees
// q iid samples and sends a short message (usually one bit) to the referee.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/sample_tuple.hpp"
#include "fourier/boolean_function.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {

/// A player's message: `width` low bits of `bits` are meaningful.
struct Message {
  std::uint32_t bits = 0;
  unsigned width = 1;

  /// Convenience for 1-bit messages: 1 = "accept", 0 = "reject/alarm".
  [[nodiscard]] bool as_bit() const {
    require(width == 1, "Message::as_bit: not a 1-bit message");
    return (bits & 1U) != 0;
  }

  static Message bit(bool b) { return Message{b ? 1U : 0U, 1U}; }
};

/// Interface: decide a message from the local samples. `rng` is the
/// player's private randomness; shared randomness, when a protocol uses it,
/// is baked into the player at construction time (the lower bounds hold for
/// any fixing of the shared coins, Section 6.1).
class Player {
 public:
  virtual ~Player() = default;
  [[nodiscard]] virtual Message decide(std::span<const std::uint64_t> samples,
                                       Rng& rng) = 0;
  [[nodiscard]] virtual unsigned message_bits() const { return 1; }
};

/// A player implementing an explicit Boolean message function
/// G : {-1,1}^{(ell+1)q} -> {0,1} over the cube universe — the object the
/// paper's lower-bound machinery analyzes. Deterministic.
class FunctionPlayer final : public Player {
 public:
  FunctionPlayer(SampleTupleCodec codec, const BooleanCubeFunction* g)
      : codec_(codec), g_(g) {
    require(g != nullptr, "FunctionPlayer: null function");
    require(g->num_vars() == codec.total_bits(),
            "FunctionPlayer: G arity mismatch");
    require(g->is_boolean01(), "FunctionPlayer: G must be {0,1}-valued");
  }

  [[nodiscard]] Message decide(std::span<const std::uint64_t> samples,
                               Rng& /*rng*/) override {
    return Message::bit(g_->value(codec_.pack(samples)) >= 0.5);
  }

 private:
  SampleTupleCodec codec_;
  const BooleanCubeFunction* g_;  // not owned; outlives the player
};

/// A player defined by an arbitrary callback (used by the testers).
class CallbackPlayer final : public Player {
 public:
  using Fn = std::function<Message(std::span<const std::uint64_t>, Rng&)>;

  CallbackPlayer(Fn fn, unsigned width) : fn_(std::move(fn)), width_(width) {
    require(width >= 1 && width <= 32, "CallbackPlayer: width in [1,32]");
  }

  [[nodiscard]] Message decide(std::span<const std::uint64_t> samples,
                               Rng& rng) override {
    Message m = fn_(samples, rng);
    require(m.width == width_, "CallbackPlayer: width mismatch");
    return m;
  }

  [[nodiscard]] unsigned message_bits() const override { return width_; }

 private:
  Fn fn_;
  unsigned width_;
};

}  // namespace duti
