// A uniform interface over "things players can draw samples from": a
// materialized DiscreteDistribution, the structured NuZ family (sampled
// without materializing its pmf), the exact uniform distribution on a
// large domain, or an empirical histogram of counts. The protocol runner
// only needs sample() and domain_size().
//
// sample_many is the hot path of every tester's inner loop, so it is
// virtual: each source draws whole batches with one dispatch instead of one
// virtual call per sample. Overrides MUST consume the RNG exactly like
// count repeated sample() calls, so batch and scalar drawing are
// interchangeable bit-for-bit (checked in test_workloads).
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "dist/count_samplers.hpp"
#include "dist/discrete_distribution.hpp"
#include "dist/nu_z.hpp"
#include "util/error.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"

namespace duti {

/// Largest domain for which sample_counts will materialize a histogram
/// (the counts vector itself is Theta(domain) memory).
inline constexpr std::uint64_t kMaxCountedDomain = 1ULL << 26;

/// How a tester materializes its q draws (DESIGN.md section 8). Count-only
/// statistics (all the collision testers, centralized and distributed) can
/// consume a per-element histogram directly:
///   kPerSample — sample_many + tally; the historical RNG stream.
///   kCounts    — SampleSource::sample_counts multinomial kernels,
///                O(min(n, q)) RNG work instead of O(q). Draws come from
///                the same distribution but consume the RNG DIFFERENTLY, so
///                per-trial outcomes (and thus measured ProbeResults) shift
///                within statistical noise; opt-in for that reason.
enum class SamplingKernel : std::uint8_t { kPerSample = 0, kCounts = 1 };

class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// Draw one element of {0, ..., domain_size()-1}.
  [[nodiscard]] virtual std::uint64_t sample(Rng& rng) const = 0;

  [[nodiscard]] virtual std::uint64_t domain_size() const = 0;

  /// l1 distance from the uniform distribution (exact where known).
  [[nodiscard]] virtual double l1_from_uniform() const = 0;

  /// Fill `out` with `count` iid samples. The default loops over sample();
  /// concrete sources override with a single-dispatch batch loop.
  virtual void sample_many(Rng& rng, std::size_t count,
                           std::vector<std::uint64_t>& out) const {
    out.resize(count);
    for (auto& s : out) s = sample(rng);
  }

  /// Tally `draws` iid samples into a per-element histogram:
  /// counts.size() == domain_size(), counts[i] = multiplicity of element i.
  /// The default draws through sample_many and tallies, so it consumes the
  /// RNG exactly like per-sample drawing. Structured sources override with
  /// direct multinomial kernels (binomial splitting) that match the sample
  /// DISTRIBUTION but consume the RNG stream differently — which is why
  /// count-kernel consumers are opt-in (DESIGN.md section 8). Throws
  /// CapacityError when the domain exceeds kMaxCountedDomain.
  virtual void sample_counts(Rng& rng, std::size_t draws,
                             std::vector<std::uint64_t>& counts) const {
    check_counted_domain();
    counts.assign(domain_size(), 0);
    static thread_local std::vector<std::uint64_t> scratch;
    sample_many(rng, draws, scratch);
    kernels::tally(scratch, counts);
  }

 protected:
  void check_counted_domain() const {
    if (domain_size() > kMaxCountedDomain) {
      throw CapacityError("sample_counts: domain too large to materialize");
    }
  }
};

/// Exact uniform on {0,...,n-1}; O(1) memory for any n.
class UniformSource final : public SampleSource {
 public:
  explicit UniformSource(std::uint64_t n) : n_(n) {
    require(n >= 1, "UniformSource: n must be positive");
  }
  [[nodiscard]] std::uint64_t sample(Rng& rng) const override {
    return rng.next_below(n_);
  }
  void sample_many(Rng& rng, std::size_t count,
                   std::vector<std::uint64_t>& out) const override {
    out.resize(count);
    kernels::uniform_sample_many(rng, n_, out);
  }
  /// Counts kernel: when draws dominate the domain, split the multinomial
  /// recursively with exact binomial draws — O(n) binomial draws instead of
  /// O(draws) samples. Below that crossover, per-sample tallying is already
  /// the cheaper path (and keeps the per-sample RNG stream).
  void sample_counts(Rng& rng, std::size_t draws,
                     std::vector<std::uint64_t>& counts) const override {
    if (draws < n_) {
      SampleSource::sample_counts(rng, draws, counts);
      return;
    }
    check_counted_domain();
    counts.assign(n_, 0);
    binomial_split_counts(
        rng, draws, 0, n_,
        [&counts](std::uint64_t cell, std::uint64_t c) { counts[cell] = c; });
  }
  [[nodiscard]] std::uint64_t domain_size() const override { return n_; }
  [[nodiscard]] double l1_from_uniform() const override { return 0.0; }

 private:
  std::uint64_t n_;
};

/// Wraps a DiscreteDistribution (alias-method sampling).
class DistributionSource final : public SampleSource {
 public:
  explicit DistributionSource(DiscreteDistribution dist)
      : dist_(std::move(dist)) {}
  [[nodiscard]] std::uint64_t sample(Rng& rng) const override {
    return dist_.sample(rng);
  }
  void sample_many(Rng& rng, std::size_t count,
                   std::vector<std::uint64_t>& out) const override {
    dist_.sample_many(rng, count, out);
  }
  [[nodiscard]] std::uint64_t domain_size() const override {
    return dist_.domain_size();
  }
  [[nodiscard]] double l1_from_uniform() const override {
    return dist_.l1_from_uniform();
  }
  [[nodiscard]] const DiscreteDistribution& distribution() const noexcept {
    return dist_;
  }

 private:
  DiscreteDistribution dist_;
};

/// Wraps the structured hard distribution nu_z (Section 3), sampled in O(1)
/// per draw regardless of the universe size.
class NuZSource final : public SampleSource {
 public:
  explicit NuZSource(NuZ nu) : nu_(std::move(nu)) {}
  [[nodiscard]] std::uint64_t sample(Rng& rng) const override {
    return nu_.sample(rng);
  }
  void sample_many(Rng& rng, std::size_t count,
                   std::vector<std::uint64_t>& out) const override {
    nu_.sample_many(rng, count, out);
  }
  /// Counts kernel via the two-level structure of nu_z: every cube point x
  /// has one HEAVY element (x, s = z(x)) of mass (1+eps)/n and one LIGHT
  /// partner of mass (1-eps)/n, and each class is uniform over the 2^ell
  /// cube points. Draw the heavy-class total as one Binomial(draws,
  /// (1+eps)/2), then split each class over its cube points with the
  /// uniform binomial-splitting kernel, scattering through the element
  /// encoding. O(min(2^ell, draws)) instead of O(draws) per trial.
  void sample_counts(Rng& rng, std::size_t draws,
                     std::vector<std::uint64_t>& counts) const override {
    check_counted_domain();
    const CubeDomain& dom = nu_.domain();
    const std::uint64_t side = dom.side_size();
    counts.assign(dom.universe_size(), 0);
    const double p_heavy = 0.5 * (1.0 + nu_.eps());
    const std::uint64_t heavy = binomial_sample(rng, draws, p_heavy);
    const PerturbationVector& z = nu_.z();
    binomial_split_counts(rng, heavy, 0, side,
                          [&](std::uint64_t x, std::uint64_t c) {
                            counts[dom.encode(x, z.sign(x))] = c;
                          });
    binomial_split_counts(rng, draws - heavy, 0, side,
                          [&](std::uint64_t x, std::uint64_t c) {
                            counts[dom.encode(x, -z.sign(x))] = c;
                          });
  }
  [[nodiscard]] std::uint64_t domain_size() const override {
    return nu_.domain().universe_size();
  }
  [[nodiscard]] double l1_from_uniform() const override {
    return nu_.l1_from_uniform();
  }
  [[nodiscard]] const NuZ& nu() const noexcept { return nu_; }

 private:
  NuZ nu_;
};

/// Empirical distribution backed by a histogram of observed counts: element
/// i is drawn with probability counts[i] / total. Lets testers replay or
/// bootstrap from tallied data without rebuilding a DiscreteDistribution
/// (no pmf normalization pass), with the same O(1) alias draws and batched
/// sample_many as the other sources.
class HistogramSource final : public SampleSource {
 public:
  explicit HistogramSource(const std::vector<std::uint64_t>& counts)
      : n_(counts.size()),
        sampler_(std::vector<double>(counts.begin(), counts.end())) {
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    require(total > 0, "HistogramSource: all counts are zero");
    // l1 from uniform, exact from the integer counts.
    double l1 = 0.0;
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (const std::uint64_t c : counts) {
      l1 += std::fabs(static_cast<double>(c) / static_cast<double>(total) -
                      inv_n);
    }
    l1_from_uniform_ = l1;
  }

  [[nodiscard]] std::uint64_t sample(Rng& rng) const override {
    return sampler_.sample(rng);
  }
  void sample_many(Rng& rng, std::size_t count,
                   std::vector<std::uint64_t>& out) const override {
    sampler_.sample_many(rng, count, out);
  }
  [[nodiscard]] std::uint64_t domain_size() const override { return n_; }
  [[nodiscard]] double l1_from_uniform() const override {
    return l1_from_uniform_;
  }

 private:
  std::uint64_t n_;
  AliasSampler sampler_;
  double l1_from_uniform_ = 0.0;
};

}  // namespace duti
