// A uniform interface over "things players can draw samples from": a
// materialized DiscreteDistribution, the structured NuZ family (sampled
// without materializing its pmf), or the exact uniform distribution on a
// large domain. The protocol runner only needs sample() and domain_size().
#pragma once

#include <cstdint>
#include <memory>

#include "dist/discrete_distribution.hpp"
#include "dist/nu_z.hpp"
#include "util/rng.hpp"

namespace duti {

class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// Draw one element of {0, ..., domain_size()-1}.
  [[nodiscard]] virtual std::uint64_t sample(Rng& rng) const = 0;

  [[nodiscard]] virtual std::uint64_t domain_size() const = 0;

  /// l1 distance from the uniform distribution (exact where known).
  [[nodiscard]] virtual double l1_from_uniform() const = 0;

  /// Fill `out` with `count` iid samples.
  void sample_many(Rng& rng, std::size_t count,
                   std::vector<std::uint64_t>& out) const {
    out.resize(count);
    for (auto& s : out) s = sample(rng);
  }
};

/// Exact uniform on {0,...,n-1}; O(1) memory for any n.
class UniformSource final : public SampleSource {
 public:
  explicit UniformSource(std::uint64_t n) : n_(n) {
    require(n >= 1, "UniformSource: n must be positive");
  }
  [[nodiscard]] std::uint64_t sample(Rng& rng) const override {
    return rng.next_below(n_);
  }
  [[nodiscard]] std::uint64_t domain_size() const override { return n_; }
  [[nodiscard]] double l1_from_uniform() const override { return 0.0; }

 private:
  std::uint64_t n_;
};

/// Wraps a DiscreteDistribution (alias-method sampling).
class DistributionSource final : public SampleSource {
 public:
  explicit DistributionSource(DiscreteDistribution dist)
      : dist_(std::move(dist)) {}
  [[nodiscard]] std::uint64_t sample(Rng& rng) const override {
    return dist_.sample(rng);
  }
  [[nodiscard]] std::uint64_t domain_size() const override {
    return dist_.domain_size();
  }
  [[nodiscard]] double l1_from_uniform() const override {
    return dist_.l1_from_uniform();
  }
  [[nodiscard]] const DiscreteDistribution& distribution() const noexcept {
    return dist_;
  }

 private:
  DiscreteDistribution dist_;
};

/// Wraps the structured hard distribution nu_z (Section 3), sampled in O(1)
/// per draw regardless of the universe size.
class NuZSource final : public SampleSource {
 public:
  explicit NuZSource(NuZ nu) : nu_(std::move(nu)) {}
  [[nodiscard]] std::uint64_t sample(Rng& rng) const override {
    return nu_.sample(rng);
  }
  [[nodiscard]] std::uint64_t domain_size() const override {
    return nu_.domain().universe_size();
  }
  [[nodiscard]] double l1_from_uniform() const override {
    return nu_.l1_from_uniform();
  }
  [[nodiscard]] const NuZ& nu() const noexcept { return nu_; }

 private:
  NuZ nu_;
};

}  // namespace duti
