// Multi-hop aggregation on the network simulator — the LOCAL/CONGEST-model
// face of distributed uniformity testing (the models [7] studies; our
// simultaneous-message protocol is the one-round star special case).
//
// Given any connected symmetric topology, we build a BFS spanning tree and
// run a convergecast: each node holds a value (its vote, or its local
// collision count), children's partial sums flow up the tree, and the root
// receives the total after (tree height) rounds. This realizes the
// referee's threshold rule on arbitrary networks at O(diameter) rounds and
// O(k log k) bits — the reduction the paper's Section 6.2 alludes to.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"

namespace duti {

struct SpanningTree {
  NodeId root = 0;
  std::vector<NodeId> parent;    // parent[root] == root
  std::vector<unsigned> depth;   // depth[root] == 0
  unsigned height = 0;

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(parent.size());
  }
  /// Children of `node` (computed on demand).
  [[nodiscard]] std::vector<NodeId> children(NodeId node) const;
};

/// BFS spanning tree from `root` over the network's edges. Requires every
/// used edge to exist in both directions; throws Error if the network is
/// not connected from the root.
[[nodiscard]] SpanningTree bfs_spanning_tree(const Network& net, NodeId root);

struct ConvergecastResult {
  std::uint64_t root_sum = 0;
  NetworkStats stats;
};

/// Sum all node values up the tree to the root. `bits_per_value` is the
/// accounted width of each partial-sum message (e.g. ceil(log2(k * max)))
/// for honest CONGEST-style cost accounting. Rounds used = tree height + 1.
[[nodiscard]] ConvergecastResult convergecast_sum(
    Network& net, const SpanningTree& tree,
    const std::vector<std::uint64_t>& values, std::uint64_t bits_per_value,
    Rng& rng);

/// Topology builders (symmetric edges) for experiments and examples.
void add_path(Network& net);
void add_cycle(Network& net);
void add_grid(Network& net, std::uint32_t rows, std::uint32_t cols);
void add_binary_tree(Network& net);

}  // namespace duti
