// The simultaneous-message protocol runner (Section 2): k players each draw
// q_j iid samples from the unknown distribution, compute messages, and a
// referee applies a decision rule to the received bits.
//
// Per-player sample counts may differ (the asymmetric-rate model of
// Section 6.2). Randomness is deterministic: player j in a given run uses
// an RNG stream derived from the run RNG, so experiments replay exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/decision_rule.hpp"
#include "sim/player.hpp"
#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

struct ProtocolResult {
  bool accept = false;
  std::vector<Message> messages;
  std::uint64_t communication_bits = 0;  // total bits sent to the referee
  std::uint64_t samples_drawn = 0;       // total samples across players
};

class SimultaneousProtocol {
 public:
  /// Creates player j (0-based). Factories let every trial use fresh player
  /// state while sharing immutable configuration.
  using PlayerFactory = std::function<std::unique_ptr<Player>(unsigned j)>;

  /// Symmetric: every player draws `q` samples.
  SimultaneousProtocol(unsigned k, unsigned q, PlayerFactory factory);

  /// Asymmetric: player j draws `qs[j]` samples.
  SimultaneousProtocol(std::vector<unsigned> qs, PlayerFactory factory);

  [[nodiscard]] unsigned num_players() const noexcept {
    return static_cast<unsigned>(qs_.size());
  }
  [[nodiscard]] unsigned samples_of(unsigned j) const { return qs_.at(j); }

  /// Draw samples, run every player, and collect the messages.
  [[nodiscard]] std::vector<Message> collect(const SampleSource& source,
                                             Rng& rng) const;

  /// Out-parameter twin: reuses `messages`' capacity, so a caller looping
  /// trials through one buffer pays no per-trial vector allocation.
  void collect(const SampleSource& source, Rng& rng,
               std::vector<Message>& messages) const;

  /// Full run: collect messages and apply a 1-bit decision rule to the
  /// players' low bits.
  [[nodiscard]] ProtocolResult run(const SampleSource& source, Rng& rng,
                                   const DecisionRule& rule) const;

  /// Out-parameter twin: reuses `result.messages` and `votes` across
  /// trials (capacities survive, so steady-state trials allocate nothing
  /// beyond what the player factory itself allocates).
  void run(const SampleSource& source, Rng& rng, const DecisionRule& rule,
           ProtocolResult& result, std::vector<std::uint8_t>& votes) const;

  /// Extract the 1-bit votes (low bit of each message).
  [[nodiscard]] static std::vector<std::uint8_t> votes_of(
      const std::vector<Message>& messages);

  /// Out-parameter twin of votes_of (reuses `votes`' capacity).
  static void votes_of(const std::vector<Message>& messages,
                       std::vector<std::uint8_t>& votes);

 private:
  std::vector<unsigned> qs_;
  PlayerFactory factory_;
};

}  // namespace duti
