// The batched protocol-plane executor (DESIGN.md §14): runs protocol
// trials for collision-statistic players through reusable flat buffers,
// with zero heap allocations per trial in steady state.
//
// The legacy SimultaneousProtocol path materializes a fresh Player (heap)
// per player per trial and counts collisions by sorting each player's
// sample vector. Every tester in this repository is a STATELESS function
// of the player's exact pair-collision count, so the batched plane
// resolves one vote functor per tester (once, at construction) and
// replaces the sort with a sparse tally over a per-worker counts plane:
//
//   pairs += plane[s]++  over the q samples, then plane[s] = 0 over the
//   same samples — an exact integer count (sum over cells of C(c,2)),
//   O(q) with no sort and no allocation, equal to collision_pairs() on
//   every input. Domains too large for a plane fall back to an in-place
//   sort of the reused sample buffer (same integer count).
//
// Bit-identity contract: the per-sample plane derives player streams
// exactly like the legacy runner (one run-rng draw per player, in order),
// draws through the same SampleSource::sample_many, and feeds the same
// post-sampling player RNG to the vote — so votes, messages, and referee
// verdicts are bit-identical to SimultaneousProtocol at any DUTI_THREADS
// and DUTI_SIMD setting (enforced by tests/test_protocol_batch.cpp).
//
// The opt-in SamplingKernel::kCounts plane mirrors PR 3's centralized
// counts kernels: players draw a per-element histogram directly
// (binomial-split multinomials, O(min(n, q)) RNG work) and the pair count
// comes from kernels::collision_pairs_from_counts. Same distribution,
// different RNG stream — statistically equivalent, never bit-identical,
// hence opt-in (chi-squared-validated in the tests).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/decision_rule.hpp"
#include "sim/player.hpp"
#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

/// Largest domain for which the per-sample plane tallies into a flat
/// counts plane; above this it sorts the (reused) sample buffer instead.
/// The plane is per-worker memory: 2^22 cells = 32 MiB ceiling.
inline constexpr std::uint64_t kMaxTallyPlaneDomain = 1ULL << 22;

/// Exact pair-collision count of `samples` drawn from a domain of size
/// `domain`: the batched plane's tally-or-sort statistic, equal to
/// testers' collision_pairs() on every input, allocation-free in steady
/// state (per-thread buffers). Exposed so calibration loops share the
/// executor's exact statistic.
[[nodiscard]] std::uint64_t tallied_collision_pairs(
    std::span<const std::uint64_t> samples, std::uint64_t domain);

class ProtocolBatchExecutor {
 public:
  /// Player j's message from its exact pair-collision count. `rng` is the
  /// player's private post-sampling stream (identical to what a legacy
  /// Player::decide would see). Resolved ONCE per tester — must be
  /// stateless (safe for concurrent trials across harness workers).
  using Vote =
      std::function<Message(unsigned j, std::uint64_t pairs, Rng& rng)>;

  /// Called with player j's histogram on the kCounts plane, after sampling
  /// and before the vote (validation hook; never set in hot paths).
  using CountsInspector =
      std::function<void(unsigned j, std::span<const std::uint64_t> counts)>;

  /// Symmetric: every player draws `q` samples.
  ProtocolBatchExecutor(unsigned k, unsigned q, Vote vote,
                        unsigned message_width = 1,
                        SamplingKernel kernel = SamplingKernel::kPerSample);

  /// Asymmetric: player j draws `qs[j]` samples (Section 6.2 rates).
  explicit ProtocolBatchExecutor(
      std::vector<unsigned> qs, Vote vote, unsigned message_width = 1,
      SamplingKernel kernel = SamplingKernel::kPerSample);

  [[nodiscard]] unsigned num_players() const noexcept {
    return static_cast<unsigned>(qs_.size());
  }
  [[nodiscard]] unsigned samples_of(unsigned j) const { return qs_.at(j); }
  [[nodiscard]] unsigned message_width() const noexcept { return width_; }
  [[nodiscard]] SamplingKernel kernel() const noexcept { return kernel_; }

  /// One trial into a caller-owned buffer: messages.resize(k) once, then
  /// steady-state trials allocate nothing.
  void collect(const SampleSource& source, Rng& rng,
               std::vector<Message>& messages) const;

  /// One trial into a per-worker thread-local buffer (valid until the same
  /// worker's next call) — the zero-setup entry point for tester::run.
  [[nodiscard]] const std::vector<Message>& collect_tls(
      const SampleSource& source, Rng& rng) const;

  /// Full trial with caller-owned planes: collect, extract low-bit votes,
  /// apply the referee rule. true = accept.
  [[nodiscard]] bool run(const SampleSource& source, Rng& rng,
                         const DecisionRule& rule,
                         std::vector<Message>& messages,
                         std::vector<std::uint8_t>& votes) const;

  /// Full trial on per-worker thread-local planes.
  [[nodiscard]] bool run(const SampleSource& source, Rng& rng,
                         const DecisionRule& rule) const;

  /// Install the kCounts validation hook (not thread-safe; set before use).
  void set_counts_inspector(CountsInspector inspector) {
    inspect_counts_ = std::move(inspector);
  }

 private:
  std::vector<unsigned> qs_;
  Vote vote_;
  unsigned width_ = 1;
  SamplingKernel kernel_ = SamplingKernel::kPerSample;
  CountsInspector inspect_counts_;
};

}  // namespace duti
