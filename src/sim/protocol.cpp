#include "sim/protocol.hpp"

#include "util/error.hpp"

namespace duti {

SimultaneousProtocol::SimultaneousProtocol(unsigned k, unsigned q,
                                           PlayerFactory factory)
    : qs_(k, q), factory_(std::move(factory)) {
  require(k >= 1, "SimultaneousProtocol: need at least one player");
  require(q >= 1, "SimultaneousProtocol: q must be >= 1");
  require(static_cast<bool>(factory_), "SimultaneousProtocol: null factory");
}

SimultaneousProtocol::SimultaneousProtocol(std::vector<unsigned> qs,
                                           PlayerFactory factory)
    : qs_(std::move(qs)), factory_(std::move(factory)) {
  require(!qs_.empty(), "SimultaneousProtocol: need at least one player");
  for (unsigned q : qs_) {
    require(q >= 1, "SimultaneousProtocol: every q must be >= 1");
  }
  require(static_cast<bool>(factory_), "SimultaneousProtocol: null factory");
}

std::vector<Message> SimultaneousProtocol::collect(const SampleSource& source,
                                                   Rng& rng) const {
  std::vector<Message> messages;
  collect(source, rng, messages);
  return messages;
}

void SimultaneousProtocol::collect(const SampleSource& source, Rng& rng,
                                   std::vector<Message>& messages) const {
  messages.clear();
  messages.reserve(qs_.size());
  thread_local std::vector<std::uint64_t> samples;
  for (unsigned j = 0; j < qs_.size(); ++j) {
    // Derive a private stream per player so runs replay deterministically
    // regardless of how much randomness each player consumes.
    Rng player_rng = make_rng(rng(), j);
    source.sample_many(player_rng, qs_[j], samples);
    // Per-run construction is this path's contract: factories exist so each
    // trial can carry fresh player STATE. The batched executor
    // (protocol_batch.hpp) is the allocation-free plane for stateless voters.
    auto player = factory_(j);
    require(player != nullptr, "SimultaneousProtocol: factory returned null");
    messages.push_back(player->decide(samples, player_rng));
  }
}

ProtocolResult SimultaneousProtocol::run(const SampleSource& source, Rng& rng,
                                         const DecisionRule& rule) const {
  ProtocolResult result;
  std::vector<std::uint8_t> votes;
  run(source, rng, rule, result, votes);
  return result;
}

void SimultaneousProtocol::run(const SampleSource& source, Rng& rng,
                               const DecisionRule& rule,
                               ProtocolResult& result,
                               std::vector<std::uint8_t>& votes) const {
  result.communication_bits = 0;
  result.samples_drawn = 0;
  collect(source, rng, result.messages);
  for (unsigned j = 0; j < qs_.size(); ++j) {
    result.communication_bits += result.messages[j].width;
    result.samples_drawn += qs_[j];
  }
  votes_of(result.messages, votes);
  result.accept = rule.decide(votes);
}

std::vector<std::uint8_t> SimultaneousProtocol::votes_of(
    const std::vector<Message>& messages) {
  std::vector<std::uint8_t> votes;
  votes_of(messages, votes);
  return votes;
}

void SimultaneousProtocol::votes_of(const std::vector<Message>& messages,
                                    std::vector<std::uint8_t>& votes) {
  votes.resize(messages.size());
  for (std::size_t j = 0; j < messages.size(); ++j) {
    votes[j] = static_cast<std::uint8_t>(messages[j].bits & 1U);
  }
}

}  // namespace duti
