#include "sim/network.hpp"

#include <algorithm>

namespace duti {

void RoundContext::send(NodeId to, std::vector<std::uint64_t> payload,
                        std::uint64_t bit_size) {
  NetMessage m;
  m.from = id_;
  m.to = to;
  m.payload = std::move(payload);
  m.bit_size = bit_size;
  outbox_.push_back(std::move(m));
}

NodeBehavior make_byzantine(NodeBehavior inner, ByzantineMode mode) {
  require(static_cast<bool>(inner), "make_byzantine: empty behavior");
  return [inner = std::move(inner), mode](RoundContext& ctx) {
    inner(ctx);
    for (auto& m : ctx.outbox()) {
      if (m.payload.empty()) continue;
      switch (mode) {
        case ByzantineMode::kStuckAtZero:
          m.payload[0] = 0;
          break;
        case ByzantineMode::kStuckAtOne:
          m.payload[0] = 1;
          break;
        case ByzantineMode::kRandomBit:
          m.payload[0] = ctx.rng()() & 1ULL;
          break;
        case ByzantineMode::kAdversarialFlip:
          m.payload[0] ^= 1ULL;
          break;
      }
    }
  };
}

namespace {

void check_fault(const LinkFault& fault, const char* what) {
  require(fault.drop_prob >= 0.0 && fault.drop_prob <= 1.0 &&
              fault.corrupt_prob >= 0.0 && fault.corrupt_prob <= 1.0 &&
              fault.delay_prob >= 0.0 && fault.delay_prob <= 1.0,
          std::string(what) + ": probabilities in [0,1]");
  require(fault.delay_prob == 0.0 || fault.delay_rounds >= 1,
          std::string(what) + ": delay_rounds must be >= 1 when delaying");
}

/// Flip a uniformly chosen bit inside the message's declared bit width.
void corrupt_message(NetMessage& m, Rng& fault_rng) {
  const std::uint64_t width = std::min<std::uint64_t>(
      m.bit_size, 64 * static_cast<std::uint64_t>(m.payload.size()));
  if (width == 0) return;
  const std::uint64_t bit = fault_rng.next_below(width);
  m.payload[bit / 64] ^= 1ULL << (bit % 64);
}

}  // namespace

Network::Network(std::uint32_t num_nodes)
    : adjacency_(num_nodes, std::vector<std::uint8_t>(num_nodes, 0)),
      behaviors_(num_nodes) {
  require(num_nodes >= 1, "Network: need at least one node");
}

void Network::add_edge(NodeId from, NodeId to) {
  require(from < num_nodes() && to < num_nodes(),
          "Network::add_edge: node id out of range");
  require(from != to, "Network::add_edge: no self loops");
  adjacency_[from][to] = 1;
}

void Network::add_star(NodeId center) {
  require(center < num_nodes(), "Network::add_star: center out of range");
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (v == center) continue;
    add_edge(v, center);
    add_edge(center, v);
  }
}

void Network::add_complete() {
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (u != v) adjacency_[u][v] = 1;
    }
  }
}

bool Network::has_edge(NodeId from, NodeId to) const {
  require(from < num_nodes() && to < num_nodes(),
          "Network::has_edge: node id out of range");
  return adjacency_[from][to] != 0;
}

std::vector<NodeId> Network::neighbors(NodeId node) const {
  require(node < num_nodes(), "Network::neighbors: node id out of range");
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (adjacency_[node][v]) out.push_back(v);
  }
  return out;
}

void Network::set_behavior(NodeId node, NodeBehavior behavior) {
  require(node < num_nodes(), "Network::set_behavior: node id out of range");
  require(static_cast<bool>(behavior), "Network::set_behavior: empty behavior");
  behaviors_[node] = std::move(behavior);
}

void Network::set_link_fault(NodeId from, NodeId to, LinkFault fault) {
  require(has_edge(from, to), "Network::set_link_fault: no such edge");
  check_fault(fault, "Network::set_link_fault");
  link_faults_[{from, to}] = fault;
}

void Network::set_default_fault(LinkFault fault) {
  check_fault(fault, "Network::set_default_fault");
  default_fault_ = fault;
}

void Network::schedule_crash(NodeId node, unsigned round) {
  require(node < num_nodes(), "Network::schedule_crash: node id out of range");
  crash_schedule_[node] = round;
}

const LinkFault& Network::fault_of(NodeId from, NodeId to) const {
  const auto it = link_faults_.find({from, to});
  return it != link_faults_.end() ? it->second : default_fault_;
}

NetworkStats Network::run(Rng& rng, unsigned max_rounds) {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (!behaviors_[v]) {
      throw Error("Network::run: node " + std::to_string(v) +
                  " has no behavior");
    }
  }
  NetworkStats stats;
  std::vector<std::vector<NetMessage>> inboxes(num_nodes());
  std::vector<std::uint8_t> halted(num_nodes(), 0);
  std::vector<std::uint8_t> crashed(num_nodes(), 0);
  // Delay-faulted messages in flight, keyed by their delivery round.
  std::map<unsigned, std::vector<NetMessage>> delayed;

  for (unsigned round = 0; round < max_rounds; ++round) {
    // Fire scheduled crash-stop faults before the round executes.
    for (const auto& [node, crash_round] : crash_schedule_) {
      if (round >= crash_round && !crashed[node]) {
        crashed[node] = 1;
        ++stats.nodes_crashed;
      }
    }
    bool all_inactive = true;
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (!halted[v] && !crashed[v]) {
        all_inactive = false;
        break;
      }
    }
    if (all_inactive) break;

    // Delayed messages due this round join the regular inboxes.
    if (const auto it = delayed.find(round); it != delayed.end()) {
      for (auto& m : it->second) inboxes[m.to].push_back(std::move(m));
      delayed.erase(it);
    }

    std::vector<std::vector<NetMessage>> next_inboxes(num_nodes());
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (halted[v] || crashed[v]) {
        // The node will never read these; keep the bit audit balanced.
        stats.messages_lost_to_halted += inboxes[v].size();
        inboxes[v].clear();
        continue;
      }
      Rng node_rng = make_rng(rng(), v, round);
      stats.messages_delivered += inboxes[v].size();
      RoundContext ctx(v, round, std::move(inboxes[v]), node_rng);
      behaviors_[v](ctx);
      if (ctx.halted()) halted[v] = 1;
      for (auto& m : ctx.take_outbox()) {
        require(has_edge(v, m.to),
                "Network::run: node " + std::to_string(v) +
                    " sent along a non-edge to " + std::to_string(m.to));
        ++stats.messages_sent;
        stats.bits_sent += m.bit_size;
        const LinkFault& fault = fault_of(v, m.to);
        if (!fault.is_clean()) {
          if (fault.in_outage(round)) {
            ++stats.messages_lost_to_outage;
            continue;
          }
          if (fault.in_burst(round)) {
            Rng fault_rng = make_rng(rng(), 0xFA17ULL, v, m.to, round);
            if (fault_rng.next_bernoulli(fault.drop_prob)) {
              ++stats.messages_dropped;
              continue;
            }
            if (!m.payload.empty() &&
                fault_rng.next_bernoulli(fault.corrupt_prob)) {
              corrupt_message(m, fault_rng);
              ++stats.messages_corrupted;
            }
            if (fault.delay_prob > 0.0 &&
                fault_rng.next_bernoulli(fault.delay_prob)) {
              ++stats.messages_delayed;
              delayed[round + 1 + fault.delay_rounds].push_back(std::move(m));
              continue;
            }
          }
        }
        next_inboxes[m.to].push_back(std::move(m));
      }
    }
    inboxes = std::move(next_inboxes);
    ++stats.rounds_executed;
  }

  // Messages still undelivered when the run ends were sent to nodes that
  // will never read them; account them so sent == delivered + lost.
  for (const auto& inbox : inboxes) {
    stats.messages_lost_to_halted += inbox.size();
  }
  for (const auto& entry : delayed) {
    stats.messages_lost_to_halted += entry.second.size();
  }
  return stats;
}

}  // namespace duti
