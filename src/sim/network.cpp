#include "sim/network.hpp"

#include <algorithm>

namespace duti {

void RoundContext::send(NodeId to, std::vector<std::uint64_t> payload,
                        std::uint64_t bit_size) {
  NetMessage m;
  m.from = id_;
  m.to = to;
  m.payload = std::move(payload);
  m.bit_size = bit_size;
  outbox_.push_back(std::move(m));
}

Network::Network(std::uint32_t num_nodes)
    : adjacency_(num_nodes, std::vector<std::uint8_t>(num_nodes, 0)),
      behaviors_(num_nodes) {
  require(num_nodes >= 1, "Network: need at least one node");
}

void Network::add_edge(NodeId from, NodeId to) {
  require(from < num_nodes() && to < num_nodes(),
          "Network::add_edge: node id out of range");
  require(from != to, "Network::add_edge: no self loops");
  adjacency_[from][to] = 1;
}

void Network::add_star(NodeId center) {
  require(center < num_nodes(), "Network::add_star: center out of range");
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (v == center) continue;
    add_edge(v, center);
    add_edge(center, v);
  }
}

void Network::add_complete() {
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (u != v) adjacency_[u][v] = 1;
    }
  }
}

bool Network::has_edge(NodeId from, NodeId to) const {
  require(from < num_nodes() && to < num_nodes(),
          "Network::has_edge: node id out of range");
  return adjacency_[from][to] != 0;
}

void Network::set_behavior(NodeId node, NodeBehavior behavior) {
  require(node < num_nodes(), "Network::set_behavior: node id out of range");
  require(static_cast<bool>(behavior), "Network::set_behavior: empty behavior");
  behaviors_[node] = std::move(behavior);
}

void Network::set_link_fault(NodeId from, NodeId to, LinkFault fault) {
  require(has_edge(from, to), "Network::set_link_fault: no such edge");
  require(fault.drop_prob >= 0.0 && fault.drop_prob <= 1.0 &&
              fault.corrupt_prob >= 0.0 && fault.corrupt_prob <= 1.0,
          "Network::set_link_fault: probabilities in [0,1]");
  link_faults_[{from, to}] = fault;
}

void Network::set_default_fault(LinkFault fault) {
  require(fault.drop_prob >= 0.0 && fault.drop_prob <= 1.0 &&
              fault.corrupt_prob >= 0.0 && fault.corrupt_prob <= 1.0,
          "Network::set_default_fault: probabilities in [0,1]");
  default_fault_ = fault;
}

const LinkFault& Network::fault_of(NodeId from, NodeId to) const {
  const auto it = link_faults_.find({from, to});
  return it != link_faults_.end() ? it->second : default_fault_;
}

NetworkStats Network::run(Rng& rng, unsigned max_rounds) {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (!behaviors_[v]) {
      throw Error("Network::run: node " + std::to_string(v) +
                  " has no behavior");
    }
  }
  NetworkStats stats;
  std::vector<std::vector<NetMessage>> inboxes(num_nodes());
  std::vector<std::uint8_t> halted(num_nodes(), 0);

  for (unsigned round = 0; round < max_rounds; ++round) {
    if (std::all_of(halted.begin(), halted.end(),
                    [](std::uint8_t h) { return h != 0; })) {
      break;
    }
    std::vector<std::vector<NetMessage>> next_inboxes(num_nodes());
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (halted[v]) continue;
      Rng node_rng = make_rng(rng(), v, round);
      RoundContext ctx(v, round, std::move(inboxes[v]), node_rng);
      behaviors_[v](ctx);
      if (ctx.halted()) halted[v] = 1;
      for (auto& m : ctx.take_outbox()) {
        require(has_edge(v, m.to),
                "Network::run: node " + std::to_string(v) +
                    " sent along a non-edge to " + std::to_string(m.to));
        ++stats.messages_sent;
        stats.bits_sent += m.bit_size;
        const LinkFault& fault = fault_of(v, m.to);
        if (!fault.is_clean()) {
          Rng fault_rng = make_rng(rng(), 0xFA17ULL, v, m.to, round);
          if (fault_rng.next_bernoulli(fault.drop_prob)) {
            ++stats.messages_dropped;
            continue;
          }
          if (!m.payload.empty() &&
              fault_rng.next_bernoulli(fault.corrupt_prob)) {
            m.payload[0] ^= 1ULL;
            ++stats.messages_corrupted;
          }
        }
        next_inboxes[m.to].push_back(std::move(m));
      }
    }
    inboxes = std::move(next_inboxes);
    ++stats.rounds_executed;
  }
  return stats;
}

}  // namespace duti
