#include "sim/convergecast.hpp"

#include <algorithm>
#include <deque>


namespace duti {

std::vector<NodeId> SpanningTree::children(NodeId node) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (v != root && parent[v] == node) out.push_back(v);
  }
  return out;
}

SpanningTree bfs_spanning_tree(const Network& net, NodeId root) {
  require(root < net.num_nodes(), "bfs_spanning_tree: root out of range");
  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(net.num_nodes(), root);
  tree.depth.assign(net.num_nodes(), 0);
  std::vector<std::uint8_t> visited(net.num_nodes(), 0);
  std::deque<NodeId> frontier{root};
  visited[root] = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (visited[v] || !net.has_edge(u, v)) continue;
      require(net.has_edge(v, u),
              "bfs_spanning_tree: edges must be symmetric");
      visited[v] = 1;
      tree.parent[v] = u;
      tree.depth[v] = tree.depth[u] + 1;
      tree.height = std::max(tree.height, tree.depth[v]);
      frontier.push_back(v);
    }
  }
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!visited[v]) {
      throw Error("bfs_spanning_tree: network not connected from root");
    }
  }
  return tree;
}

ConvergecastResult convergecast_sum(Network& net, const SpanningTree& tree,
                                    const std::vector<std::uint64_t>& values,
                                    std::uint64_t bits_per_value, Rng& rng) {
  require(values.size() == net.num_nodes(),
          "convergecast_sum: one value per node");
  require(tree.num_nodes() == net.num_nodes(),
          "convergecast_sum: tree/network size mismatch");

  // Per-node state captured by the behaviors; the simulation is one-shot.
  std::vector<std::uint64_t> partial(values);
  std::vector<std::uint64_t> pending(net.num_nodes(), 0);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (v != tree.root) ++pending[tree.parent[v]];
  }
  std::uint64_t root_sum = 0;

  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    net.set_behavior(v, [&, v](RoundContext& ctx) {
      for (const auto& m : ctx.inbox()) {
        partial[v] += m.payload.at(0);
        --pending[v];
      }
      if (pending[v] == 0) {
        if (v == tree.root) {
          root_sum = partial[v];
        } else {
          ctx.send(tree.parent[v], {partial[v]}, bits_per_value);
        }
        ctx.halt();
      }
    });
  }
  ConvergecastResult result;
  result.stats = net.run(rng, tree.height + 2);
  result.root_sum = root_sum;
  return result;
}

void add_path(Network& net) {
  for (NodeId v = 0; v + 1 < net.num_nodes(); ++v) {
    net.add_edge(v, v + 1);
    net.add_edge(v + 1, v);
  }
}

void add_cycle(Network& net) {
  require(net.num_nodes() >= 3, "add_cycle: need at least 3 nodes");
  add_path(net);
  net.add_edge(net.num_nodes() - 1, 0);
  net.add_edge(0, net.num_nodes() - 1);
}

void add_grid(Network& net, std::uint32_t rows, std::uint32_t cols) {
  require(rows * cols == net.num_nodes(),
          "add_grid: rows*cols must equal node count");
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        net.add_edge(id(r, c), id(r, c + 1));
        net.add_edge(id(r, c + 1), id(r, c));
      }
      if (r + 1 < rows) {
        net.add_edge(id(r, c), id(r + 1, c));
        net.add_edge(id(r + 1, c), id(r, c));
      }
    }
  }
}

void add_binary_tree(Network& net) {
  for (NodeId v = 1; v < net.num_nodes(); ++v) {
    const NodeId parent = (v - 1) / 2;
    net.add_edge(v, parent);
    net.add_edge(parent, v);
  }
}

}  // namespace duti
