// A synchronous round-based message-passing network simulator.
//
// The paper's simultaneous-message model is the one-round star network:
// every node sends one message to a referee. The examples (sensor network,
// distributed verifier) also use multi-round variants — e.g. aggregating
// votes up a spanning tree — so the simulator supports arbitrary directed
// topologies, per-round node behaviours, and exact message/bit accounting
// (the CONGEST-style cost measure mentioned in the paper's related work).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {

using NodeId = std::uint32_t;

/// A network message: opaque 64-bit words plus an explicit bit-size, so the
/// cost accounting can charge sub-word messages (e.g. 1-bit votes) honestly.
struct NetMessage {
  NodeId from = 0;
  NodeId to = 0;
  std::vector<std::uint64_t> payload;
  std::uint64_t bit_size = 0;
};

/// Everything a node can see and do during one round.
class RoundContext {
 public:
  RoundContext(NodeId id, unsigned round, std::vector<NetMessage> inbox,
               Rng& rng)
      : id_(id), round_(round), inbox_(std::move(inbox)), rng_(&rng) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] unsigned round() const noexcept { return round_; }
  [[nodiscard]] const std::vector<NetMessage>& inbox() const noexcept {
    return inbox_;
  }
  [[nodiscard]] Rng& rng() noexcept { return *rng_; }

  /// Queue a message for delivery at the start of the next round.
  void send(NodeId to, std::vector<std::uint64_t> payload,
            std::uint64_t bit_size);

  /// Mark this node as finished; the simulation stops when all nodes halt.
  void halt() noexcept { halted_ = true; }
  [[nodiscard]] bool halted() const noexcept { return halted_; }

  [[nodiscard]] std::vector<NetMessage> take_outbox() noexcept {
    return std::move(outbox_);
  }

 private:
  NodeId id_;
  unsigned round_;
  std::vector<NetMessage> inbox_;
  std::vector<NetMessage> outbox_;
  Rng* rng_;
  bool halted_ = false;
};

/// Per-node behaviour: called once per round until the node halts.
using NodeBehavior = std::function<void(RoundContext&)>;

struct NetworkStats {
  unsigned rounds_executed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bits_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_corrupted = 0;
};

/// Fault model for a link: each traversing message is independently
/// dropped with `drop_prob`; surviving messages have their first payload
/// word bit-flipped (low bit) with `corrupt_prob`. Faults draw from a
/// stream derived from the run RNG, so faulty runs replay exactly too.
struct LinkFault {
  double drop_prob = 0.0;
  double corrupt_prob = 0.0;

  [[nodiscard]] bool is_clean() const noexcept {
    return drop_prob == 0.0 && corrupt_prob == 0.0;
  }
};

class Network {
 public:
  /// `num_nodes` nodes, ids 0..num_nodes-1, no edges yet.
  explicit Network(std::uint32_t num_nodes);

  /// Directed communication edge; sending along a non-edge throws at run
  /// time. add_star wires every node to a center (both directions).
  void add_edge(NodeId from, NodeId to);
  void add_star(NodeId center);
  void add_complete();

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;

  void set_behavior(NodeId node, NodeBehavior behavior);

  /// Apply a fault model to one link (must be an edge) or to every link.
  void set_link_fault(NodeId from, NodeId to, LinkFault fault);
  void set_default_fault(LinkFault fault);

  /// Run until every node has halted or `max_rounds` elapse; returns stats.
  /// Throws Error if any node is missing a behavior.
  NetworkStats run(Rng& rng, unsigned max_rounds = 1000);

 private:
  [[nodiscard]] const LinkFault& fault_of(NodeId from, NodeId to) const;

  std::vector<std::vector<std::uint8_t>> adjacency_;  // adjacency_[u][v]
  std::vector<NodeBehavior> behaviors_;
  LinkFault default_fault_;
  std::map<std::pair<NodeId, NodeId>, LinkFault> link_faults_;
};

}  // namespace duti
