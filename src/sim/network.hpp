// A synchronous round-based message-passing network simulator.
//
// The paper's simultaneous-message model is the one-round star network:
// every node sends one message to a referee. The examples (sensor network,
// distributed verifier) also use multi-round variants — e.g. aggregating
// votes up a spanning tree — so the simulator supports arbitrary directed
// topologies, per-round node behaviours, and exact message/bit accounting
// (the CONGEST-style cost measure mentioned in the paper's related work).
//
// Fault model (the reliability assumptions the paper makes, broken on
// purpose): per-link drops, full-width bit corruption, bounded delivery
// delay, scheduled link outages; per-node crash-stop schedules and
// Byzantine behaviour wrappers. All fault randomness derives from the run
// RNG through dedicated streams, so faulty runs replay bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {

using NodeId = std::uint32_t;

/// A network message: opaque 64-bit words plus an explicit bit-size, so the
/// cost accounting can charge sub-word messages (e.g. 1-bit votes) honestly.
struct NetMessage {
  NodeId from = 0;
  NodeId to = 0;
  std::vector<std::uint64_t> payload;
  std::uint64_t bit_size = 0;
};

/// Everything a node can see and do during one round.
class RoundContext {
 public:
  RoundContext(NodeId id, unsigned round, std::vector<NetMessage> inbox,
               Rng& rng)
      : id_(id), round_(round), inbox_(std::move(inbox)), rng_(&rng) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] unsigned round() const noexcept { return round_; }
  [[nodiscard]] const std::vector<NetMessage>& inbox() const noexcept {
    return inbox_;
  }
  [[nodiscard]] Rng& rng() noexcept { return *rng_; }

  /// Queue a message for delivery at the start of the next round.
  void send(NodeId to, std::vector<std::uint64_t> payload,
            std::uint64_t bit_size);

  /// Mark this node as finished; the simulation stops when all nodes halt.
  void halt() noexcept { halted_ = true; }
  [[nodiscard]] bool halted() const noexcept { return halted_; }

  /// Mutable view of the queued outgoing messages. Byzantine behaviour
  /// wrappers use this to tamper with an honest node's output.
  [[nodiscard]] std::vector<NetMessage>& outbox() noexcept { return outbox_; }

  [[nodiscard]] std::vector<NetMessage> take_outbox() noexcept {
    return std::move(outbox_);
  }

 private:
  NodeId id_;
  unsigned round_;
  std::vector<NetMessage> inbox_;
  std::vector<NetMessage> outbox_;
  Rng* rng_;
  bool halted_ = false;
};

/// Per-node behaviour: called once per round until the node halts.
using NodeBehavior = std::function<void(RoundContext&)>;

struct NetworkStats {
  unsigned rounds_executed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bits_sent = 0;
  std::uint64_t messages_delivered = 0;       // handed to an active node's
                                              // inbox (corrupted included)
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_corrupted = 0;
  std::uint64_t messages_delayed = 0;         // deferred by a delay fault
  std::uint64_t messages_lost_to_outage = 0;  // sent into an outage window
  std::uint64_t messages_lost_to_halted = 0;  // delivered to a halted/crashed
                                              // node (or undelivered at exit)
  std::uint64_t nodes_crashed = 0;            // crash-stop faults that fired

  /// Every sent message is either delivered or accounted to exactly one
  /// loss bucket; audits check this balance.
  [[nodiscard]] std::uint64_t messages_lost() const noexcept {
    return messages_dropped + messages_lost_to_outage +
           messages_lost_to_halted;
  }
  /// The conservation law the chaos oracles enforce: every sent message is
  /// delivered to an active node or charged to exactly one loss bucket.
  [[nodiscard]] bool conserves_messages() const noexcept {
    return messages_sent == messages_delivered + messages_lost();
  }
};

/// Fault model for a link. Each traversing message is independently:
///  1. discarded outright if the send round falls in [outage_lo, outage_hi)
///     (a scheduled link outage — deterministic, no randomness consumed);
///  2. dropped with probability `drop_prob`;
///  3. corrupted with probability `corrupt_prob` — a uniformly chosen bit
///     inside the message's declared `bit_size` is flipped;
///  4. delayed with probability `delay_prob` — delivery deferred by
///     `delay_rounds` extra rounds.
/// The probabilistic faults (2-4) only fire when the send round falls in
/// the burst window [burst_lo, burst_hi); the default window covers every
/// round, so existing always-on fault models are unchanged. Faults draw
/// from a stream derived from the run RNG, so faulty runs replay exactly
/// too.
struct LinkFault {
  /// Sentinel for "burst never ends" — the default upper bound.
  static constexpr unsigned kAlways = 0xFFFFFFFFu;

  double drop_prob = 0.0;
  double corrupt_prob = 0.0;
  double delay_prob = 0.0;
  unsigned delay_rounds = 1;
  unsigned outage_lo = 0;  // outage window [outage_lo, outage_hi); empty
  unsigned outage_hi = 0;  // when outage_lo >= outage_hi
  unsigned burst_lo = 0;         // probabilistic faults fire only when the
  unsigned burst_hi = kAlways;   // send round is in [burst_lo, burst_hi)

  [[nodiscard]] bool is_clean() const noexcept {
    return drop_prob == 0.0 && corrupt_prob == 0.0 && delay_prob == 0.0 &&
           outage_lo >= outage_hi;
  }
  [[nodiscard]] bool in_outage(unsigned round) const noexcept {
    return round >= outage_lo && round < outage_hi;
  }
  [[nodiscard]] bool in_burst(unsigned round) const noexcept {
    return round >= burst_lo && round < burst_hi;
  }
};

/// How a Byzantine wrapper tampers with an honest node's outgoing messages
/// (the first payload word — the vote/verdict channel of every protocol
/// here).
enum class ByzantineMode {
  kStuckAtZero,      // every outgoing word0 forced to 0 (always-accept)
  kStuckAtOne,       // every outgoing word0 forced to 1 (stuck-on-alarm)
  kRandomBit,        // word0 replaced by a fair coin
  kAdversarialFlip,  // low bit of word0 inverted (vote negation)
};

/// Decorate a behaviour with Byzantine message tampering. The inner
/// behaviour runs unmodified (same RNG stream), then every queued message
/// is tampered with. Honest accounting: tampered messages are still
/// charged at their declared bit size.
[[nodiscard]] NodeBehavior make_byzantine(NodeBehavior inner,
                                          ByzantineMode mode);

class Network {
 public:
  /// `num_nodes` nodes, ids 0..num_nodes-1, no edges yet.
  explicit Network(std::uint32_t num_nodes);

  /// Directed communication edge; sending along a non-edge throws at run
  /// time. add_star wires every node to a center (both directions).
  void add_edge(NodeId from, NodeId to);
  void add_star(NodeId center);
  void add_complete();

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;

  /// All v with an edge node -> v.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId node) const;

  void set_behavior(NodeId node, NodeBehavior behavior);

  /// Apply a fault model to one link (must be an edge) or to every link.
  void set_link_fault(NodeId from, NodeId to, LinkFault fault);
  void set_default_fault(LinkFault fault);

  /// Crash-stop fault: the node stops executing at the start of `round`
  /// (it never runs that round or any later one). Crashed nodes count as
  /// halted for termination, and messages delivered to them are counted in
  /// `messages_lost_to_halted`.
  void schedule_crash(NodeId node, unsigned round);
  void clear_crashes() noexcept { crash_schedule_.clear(); }

  /// Run until every node has halted or `max_rounds` elapse; returns stats.
  /// Throws Error if any node is missing a behavior.
  NetworkStats run(Rng& rng, unsigned max_rounds = 1000);

 private:
  [[nodiscard]] const LinkFault& fault_of(NodeId from, NodeId to) const;

  std::vector<std::vector<std::uint8_t>> adjacency_;  // adjacency_[u][v]
  std::vector<NodeBehavior> behaviors_;
  LinkFault default_fault_;
  std::map<std::pair<NodeId, NodeId>, LinkFault> link_faults_;
  std::map<NodeId, unsigned> crash_schedule_;
};

}  // namespace duti
