#include "sim/reliable.hpp"

#include <algorithm>

namespace duti {

namespace {

constexpr std::uint64_t kKindData = 1;
constexpr std::uint64_t kKindAck = 2;
constexpr unsigned kTimeoutCap = 256;  // rounds; keeps backoff finite

[[nodiscard]] std::uint64_t make_header(std::uint64_t kind,
                                        std::uint64_t seq) noexcept {
  return kind | (seq << 2);
}

}  // namespace

unsigned ReliableConfig::timeout(unsigned attempt) const noexcept {
  std::uint64_t t = std::max(1u, ack_timeout);
  for (unsigned i = 0; i < attempt; ++i) {
    t *= std::max(1u, backoff);
    if (t >= kTimeoutCap) return kTimeoutCap;
  }
  return static_cast<unsigned>(std::min<std::uint64_t>(t, kTimeoutCap));
}

unsigned ReliableConfig::window() const noexcept {
  unsigned total = 0;
  for (unsigned i = 0; i <= max_retries; ++i) total += timeout(i);
  return total;
}

void ReliableStats::merge(const ReliableStats& other) noexcept {
  data_sent += other.data_sent;
  retransmissions += other.retransmissions;
  acks_sent += other.acks_sent;
  duplicates += other.duplicates;
  delivered += other.delivered;
  failed += other.failed;
  payload_bits += other.payload_bits;
  overhead_bits += other.overhead_bits;
}

std::uint64_t ReliableEndpoint::send(NodeId to,
                                     std::vector<std::uint64_t> payload,
                                     std::uint64_t bit_size) {
  Pending p;
  p.to = to;
  p.seq = next_seq_++;
  p.payload = std::move(payload);
  p.bit_size = bit_size;
  pending_.push_back(std::move(p));
  return pending_.back().seq;
}

std::vector<ReliableDelivery> ReliableEndpoint::receive(RoundContext& ctx) {
  std::vector<ReliableDelivery> out;
  const std::uint64_t header_bits = cfg_.header_bits();
  for (const auto& m : ctx.inbox()) {
    if (m.payload.empty()) continue;  // not a reliable frame
    const std::uint64_t kind = m.payload[0] & 3ULL;
    const std::uint64_t seq = m.payload[0] >> 2;
    if (kind == kKindData) {
      // Always ACK, even duplicates: the earlier ACK may have been lost.
      ctx.send(m.from, {make_header(kKindAck, seq)}, header_bits);
      ++stats_.acks_sent;
      stats_.overhead_bits += header_bits;
      if (!seen_.insert({m.from, seq}).second) {
        ++stats_.duplicates;
        continue;
      }
      ReliableDelivery d;
      d.from = m.from;
      d.seq = seq;
      d.payload.assign(m.payload.begin() + 1, m.payload.end());
      d.bit_size = m.bit_size > header_bits ? m.bit_size - header_bits : 0;
      ++stats_.delivered;
      out.push_back(std::move(d));
    } else if (kind == kKindAck) {
      const auto it = std::find_if(
          pending_.begin(), pending_.end(), [&](const Pending& p) {
            return p.to == m.from && p.seq == seq;
          });
      if (it != pending_.end()) pending_.erase(it);
    }
    // Unknown kinds (e.g. a corrupted header) are ignored; the sender's
    // timeout recovers the frame.
  }
  return out;
}

void ReliableEndpoint::flush(RoundContext& ctx) {
  const unsigned round = ctx.round();
  const std::uint64_t header_bits = cfg_.header_bits();
  for (std::size_t i = 0; i < pending_.size();) {
    Pending& p = pending_[i];
    if (p.attempts == 0) {
      // First transmission.
      std::vector<std::uint64_t> framed;
      framed.reserve(p.payload.size() + 1);
      framed.push_back(make_header(kKindData, p.seq));
      framed.insert(framed.end(), p.payload.begin(), p.payload.end());
      ctx.send(p.to, std::move(framed), p.bit_size + header_bits);
      ++stats_.data_sent;
      stats_.payload_bits += p.bit_size;
      stats_.overhead_bits += header_bits;
      p.attempts = 1;
      p.next_attempt_round = round + cfg_.timeout(0);
      ++i;
    } else if (round >= p.next_attempt_round) {
      if (p.attempts > cfg_.max_retries) {
        // Retry budget exhausted: hand the payload back to the caller.
        ++stats_.failed;
        FailedSend f;
        f.to = p.to;
        f.seq = p.seq;
        f.payload = std::move(p.payload);
        f.bit_size = p.bit_size;
        failures_.push_back(std::move(f));
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(i));
      } else {
        std::vector<std::uint64_t> framed;
        framed.reserve(p.payload.size() + 1);
        framed.push_back(make_header(kKindData, p.seq));
        framed.insert(framed.end(), p.payload.begin(), p.payload.end());
        ctx.send(p.to, std::move(framed), p.bit_size + header_bits);
        ++stats_.retransmissions;
        stats_.overhead_bits += p.bit_size + header_bits;
        p.next_attempt_round = round + cfg_.timeout(p.attempts);
        ++p.attempts;
        ++i;
      }
    } else {
      ++i;
    }
  }
}

std::vector<FailedSend> ReliableEndpoint::take_failures() {
  return std::move(failures_);
}

ReliableConvergecastResult convergecast_sum_reliable(
    Network& net, const SpanningTree& tree,
    const std::vector<std::uint64_t>& values, std::uint64_t bits_per_value,
    Rng& rng, const ReliableConfig& cfg) {
  require(values.size() == net.num_nodes(),
          "convergecast_sum_reliable: one value per node");
  require(tree.num_nodes() == net.num_nodes(),
          "convergecast_sum_reliable: tree/network size mismatch");
  const std::uint32_t k = net.num_nodes();

  // Each frame carries (partial sum, contributing-node count).
  std::uint64_t count_bits = 1;
  while ((1ULL << count_bits) < k + 1ULL) ++count_bits;
  const std::uint64_t app_bits = bits_per_value + count_bits;

  // Per-hop time budget: a full retransmission window plus slack, so a
  // child's (possibly retransmitted) report lands before its parent's
  // send deadline.
  const unsigned hop = cfg.window() + 4;
  const unsigned t_end = (tree.height + 4) * hop;
  auto deadline = [&](NodeId v) {
    return (tree.height - tree.depth[v] + 1) * hop;
  };

  // Shared per-node protocol state, captured by the behaviours (the same
  // one-shot idiom as convergecast_sum).
  std::vector<ReliableEndpoint> ep(k, ReliableEndpoint(cfg));
  std::vector<std::uint64_t> acc(values);
  std::vector<std::uint64_t> cnt(k, 1);
  std::vector<std::uint8_t> sent(k, 0);
  std::vector<NodeId> cur_parent(tree.parent);
  std::vector<std::vector<NodeId>> kids(k);
  std::vector<std::set<NodeId>> reported(k);
  std::vector<std::set<NodeId>> tried(k);
  for (NodeId v = 0; v < k; ++v) {
    kids[v] = tree.children(v);
    tried[v].insert(tree.parent[v]);
  }
  std::uint32_t reparents = 0, lost = 0;

  auto all_done = [&]() {
    for (NodeId v = 0; v < k; ++v) {
      if (v != tree.root && !sent[v]) return false;
      if (!ep[v].idle()) return false;
    }
    return true;
  };

  for (NodeId v = 0; v < k; ++v) {
    net.set_behavior(v, [&, v](RoundContext& ctx) {
      for (auto& d : ep[v].receive(ctx)) {
        const std::uint64_t value = d.payload.at(0);
        const std::uint64_t c = d.payload.at(1);
        reported[v].insert(d.from);
        if (v == tree.root || !sent[v]) {
          acc[v] += value;
          cnt[v] += c;
        } else {
          // Our own report already left; forward the late contribution
          // (a re-parented or straggler subtree) up the current parent.
          ep[v].send(cur_parent[v], {value, c}, app_bits);
        }
      }
      for (auto& f : ep[v].take_failures()) {
        // The destination stopped acknowledging (crashed parent, dead
        // link): re-parent to an untried neighbour strictly closer to the
        // root. Depth strictly decreases along any forwarding chain, so
        // healing cannot create cycles.
        NodeId next = v;
        for (const NodeId u : net.neighbors(v)) {
          if (tree.depth[u] >= tree.depth[v]) continue;
          if (tried[v].count(u)) continue;
          if (next == v || tree.depth[u] < tree.depth[next] ||
              (tree.depth[u] == tree.depth[next] && u < next)) {
            next = u;
          }
        }
        if (next == v) {
          lost += static_cast<std::uint32_t>(f.payload.at(1));
        } else {
          tried[v].insert(next);
          cur_parent[v] = next;
          ++reparents;
          ep[v].send(next, std::move(f.payload), f.bit_size);
        }
      }
      if (v != tree.root && !sent[v]) {
        bool all_reported = true;
        for (const NodeId c : kids[v]) {
          if (!reported[v].count(c)) {
            all_reported = false;
            break;
          }
        }
        // Send once every child reported — or at the deadline, with
        // whatever arrived (crashed children never report).
        if (all_reported || ctx.round() >= deadline(v)) {
          sent[v] = 1;
          ep[v].send(cur_parent[v], {acc[v], cnt[v]}, app_bits);
        }
      }
      ep[v].flush(ctx);
      if (ctx.round() >= t_end || all_done()) ctx.halt();
    });
  }

  ReliableConvergecastResult result;
  result.stats = net.run(rng, t_end + 2);
  result.root_sum = acc[tree.root];
  result.values_reached = static_cast<std::uint32_t>(cnt[tree.root]);
  result.values_total = k;
  result.values_lost = lost;
  result.reparent_events = reparents;
  for (NodeId v = 0; v < k; ++v) result.transport.merge(ep[v].stats());
  return result;
}

}  // namespace duti
