// Referee decision rules f : {0,1}^k -> {0,1} (Section 2). The vote
// convention throughout: a player's bit 1 means "accept / looks uniform",
// 0 means "reject / raise alarm"; the referee's output 1 means the network
// accepts.
//
//   * AND rule:      accept iff every player accepts (the local-decision
//                    rule of Theorem 1.2).
//   * T-threshold:   reject iff at least T players reject (Theorem 1.3;
//                    f(x) = 1 exactly when sum x_i >= k - T + 1).
//   * Arbitrary:     any callback (Theorem 1.1 allows all of these).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

namespace duti {

class DecisionRule {
 public:
  using Fn = std::function<bool(std::span<const std::uint8_t>)>;

  /// Accept iff all players accept; reject if >= 1 rejects.
  [[nodiscard]] static DecisionRule and_rule();

  /// Accept iff at least one player accepts.
  [[nodiscard]] static DecisionRule or_rule();

  /// Reject iff at least `t` players reject (t >= 1). t = 1 is the AND rule.
  [[nodiscard]] static DecisionRule threshold(std::uint64_t t);

  /// Reject iff a strict majority rejects.
  [[nodiscard]] static DecisionRule majority();

  /// Accept iff the number of rejecting players is even (a deliberately
  /// "global" rule, used in tests of arbitrary-rule support).
  [[nodiscard]] static DecisionRule parity();

  /// Symmetric (anonymous) rule: the decision depends only on the NUMBER
  /// of rejecting players. Every rule in the paper is of this form; [7]'s
  /// anonymity lower bound concerns exactly this class.
  [[nodiscard]] static DecisionRule symmetric(
      std::string name, std::function<bool(std::uint64_t rejects,
                                           std::uint64_t k)> accept_fn);

  /// Arbitrary referee function.
  [[nodiscard]] static DecisionRule custom(std::string name, Fn fn);

  /// Apply to the vector of player bits.
  [[nodiscard]] bool decide(std::span<const std::uint8_t> votes) const {
    return fn_(votes);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  DecisionRule(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name_;
  Fn fn_;
};

}  // namespace duti
