#include "sim/protocol_batch.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace duti {

namespace {

// Per-worker buffers. All grown-only: a trial leaves the tally plane
// all-zeros (cells are zeroed through the just-drawn samples), and
// vector::resize zero-fills fresh cells, so the invariant "every cell of
// tls_plane below its size is zero between trials" holds without ever
// memset-ing the whole plane.
thread_local std::vector<std::uint64_t> tls_samples;
thread_local std::vector<std::uint64_t> tls_plane;
thread_local std::vector<std::uint64_t> tls_counts;
thread_local std::vector<Message> tls_messages;
thread_local std::vector<std::uint8_t> tls_votes;

// Exact pair count via the sparse tally: scatter-increment accumulating
// the running collision total, then zero exactly the touched cells.
// Incrementing c -> c+1 adds c new pairs, so the sum over draws of the
// pre-increment count is exactly sum over cells of C(c,2).
std::uint64_t pairs_by_tally(std::span<const std::uint64_t> samples,
                             std::uint64_t domain) {
  if (tls_plane.size() < domain) tls_plane.resize(domain);
  std::uint64_t pairs = 0;
  for (const std::uint64_t s : samples) pairs += tls_plane[s]++;
  for (const std::uint64_t s : samples) tls_plane[s] = 0;
  return pairs;
}

// Sort fallback for domains too large to hold a plane: count equal runs in
// the (reused, caller-owned) buffer. Same integer as the tally — this is
// the testers' collision_pairs() algorithm, re-stated locally because the
// sim layer sits below testers/ and cannot include it.
std::uint64_t pairs_by_sort(std::span<std::uint64_t> samples) {
  std::sort(samples.begin(), samples.end());
  std::uint64_t pairs = 0;
  std::size_t i = 0;
  while (i < samples.size()) {
    std::size_t j = i + 1;
    while (j < samples.size() && samples[j] == samples[i]) ++j;
    const std::uint64_t run = j - i;
    pairs += run * (run - 1) / 2;
    i = j;
  }
  return pairs;
}

}  // namespace

std::uint64_t tallied_collision_pairs(std::span<const std::uint64_t> samples,
                                      std::uint64_t domain) {
  if (domain <= kMaxTallyPlaneDomain) return pairs_by_tally(samples, domain);
  static thread_local std::vector<std::uint64_t> sort_scratch;
  sort_scratch.assign(samples.begin(), samples.end());
  return pairs_by_sort(sort_scratch);
}

ProtocolBatchExecutor::ProtocolBatchExecutor(unsigned k, unsigned q, Vote vote,
                                             unsigned message_width,
                                             SamplingKernel kernel)
    : qs_(k, q), vote_(std::move(vote)), width_(message_width),
      kernel_(kernel) {
  require(k >= 1, "ProtocolBatchExecutor: need at least one player");
  require(q >= 1, "ProtocolBatchExecutor: q must be >= 1");
  require(static_cast<bool>(vote_), "ProtocolBatchExecutor: null vote");
  require(width_ >= 1 && width_ <= 32,
          "ProtocolBatchExecutor: message width must be in [1, 32]");
}

ProtocolBatchExecutor::ProtocolBatchExecutor(std::vector<unsigned> qs,
                                             Vote vote, unsigned message_width,
                                             SamplingKernel kernel)
    : qs_(std::move(qs)), vote_(std::move(vote)), width_(message_width),
      kernel_(kernel) {
  require(!qs_.empty(), "ProtocolBatchExecutor: need at least one player");
  for (unsigned q : qs_) {
    require(q >= 1, "ProtocolBatchExecutor: every q must be >= 1");
  }
  require(static_cast<bool>(vote_), "ProtocolBatchExecutor: null vote");
  require(width_ >= 1 && width_ <= 32,
          "ProtocolBatchExecutor: message width must be in [1, 32]");
}

void ProtocolBatchExecutor::collect(const SampleSource& source, Rng& rng,
                                    std::vector<Message>& messages) const {
  const std::uint64_t domain = source.domain_size();
  messages.resize(qs_.size());
  for (unsigned j = 0; j < qs_.size(); ++j) {
    // Identical stream derivation to SimultaneousProtocol::collect — one
    // run-rng draw per player, in player order — so the batched plane
    // replays the legacy path's randomness bit-for-bit.
    Rng player_rng = make_rng(rng(), j);
    std::uint64_t pairs = 0;
    if (kernel_ == SamplingKernel::kCounts) {
      source.sample_counts(player_rng, qs_[j], tls_counts);
      if (inspect_counts_) inspect_counts_(j, tls_counts);
      pairs = kernels::collision_pairs_from_counts(tls_counts);
    } else {
      source.sample_many(player_rng, qs_[j], tls_samples);
      // Tally (and reset) before the vote, so a throwing vote cannot leave
      // the plane dirty for the worker's next trial.
      pairs = (domain <= kMaxTallyPlaneDomain)
                  ? pairs_by_tally(tls_samples, domain)
                  : pairs_by_sort(tls_samples);
    }
    Message m = vote_(j, pairs, player_rng);
    require(m.width == width_,
            "ProtocolBatchExecutor: vote returned unexpected message width");
    messages[j] = m;
  }
}

const std::vector<Message>& ProtocolBatchExecutor::collect_tls(
    const SampleSource& source, Rng& rng) const {
  collect(source, rng, tls_messages);
  return tls_messages;
}

bool ProtocolBatchExecutor::run(const SampleSource& source, Rng& rng,
                                const DecisionRule& rule,
                                std::vector<Message>& messages,
                                std::vector<std::uint8_t>& votes) const {
  collect(source, rng, messages);
  votes.resize(messages.size());
  for (std::size_t j = 0; j < messages.size(); ++j) {
    votes[j] = static_cast<std::uint8_t>(messages[j].bits & 1U);
  }
  return rule.decide(votes);
}

bool ProtocolBatchExecutor::run(const SampleSource& source, Rng& rng,
                                const DecisionRule& rule) const {
  return run(source, rng, rule, tls_messages, tls_votes);
}

}  // namespace duti
